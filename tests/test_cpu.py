"""Unit and integration tests for the core model, MMIO and synchronization."""

import pytest

from repro.cpu import Barrier, Core, CoreConfig, McsLock, MmioMap, MmioPort, SpinLock
from repro.cpu.mmio import MmioError
from repro.sim import Delay
from tests.conftest import build_mini_system


def make_core(system, index=0, mmio_map=None):
    mmio = None
    if mmio_map is not None:
        mmio = MmioPort(system.sim, system.clock, system.routers[index], mmio_map)
    return Core(system.sim, system.clock, index, system.agents[index], mmio=mmio)


class EchoDevice:
    """A trivial MMIO device that stores written values and echoes reads."""

    def __init__(self, system, node, latency_cycles=2, target="dev"):
        self.system = system
        self.latency_cycles = latency_cycles
        self.values = {}
        self.port = system.routers[node].port(target, self._handle)

    def _handle(self, message):
        self.system.sim.process(self._respond(message))

    def _respond(self, message):
        yield self.system.clock.wait_cycles(self.latency_cycles)
        if message.kind == "mmio_write":
            self.values[message.addr] = message.meta["value"]
            self.port.reply(message, "mmio_resp")
        else:
            value = self.values.get(message.addr, 0xDEAD)
            self.port.reply(message, "mmio_resp", value=value)


# --------------------------------------------------------------------------- #
# CpuContext basics
# --------------------------------------------------------------------------- #
def test_compute_charges_cycles():
    system = build_mini_system()
    core = make_core(system)

    def program(ctx):
        start = ctx.now
        yield from ctx.compute(100)
        return ctx.now - start

    process = core.run(program)
    system.sim.run()
    assert process.done.value == pytest.approx(100.0, abs=2.0)


def test_fp_compute_costs_more_than_int():
    system = build_mini_system()
    core = make_core(system)

    def program(ctx, fp):
        start = ctx.now
        yield from ctx.compute(50, fp=fp)
        return ctx.now - start

    p_int = core.run(program, False)
    system.sim.run()
    p_fp = core.run(program, True)
    system.sim.run()
    assert p_fp.done.value > p_int.done.value


def test_load_store_roundtrip_through_cache():
    system = build_mini_system()
    core = make_core(system)

    def program(ctx):
        yield from ctx.store(0x1000, 41)
        value = yield from ctx.load(0x1000)
        return value

    process = core.run(program)
    system.sim.run()
    assert process.done.value == 41
    assert core.stats.counter("stores").value == 1


def test_cas_and_fetch_add_semantics():
    system = build_mini_system()
    core = make_core(system)

    def program(ctx):
        ok_1 = yield from ctx.cas(0x2000, 0, 5)
        ok_2 = yield from ctx.cas(0x2000, 0, 9)
        old = yield from ctx.fetch_add(0x2000, 3)
        value = yield from ctx.load(0x2000)
        return ok_1, ok_2, old, value

    process = core.run(program)
    system.sim.run()
    assert process.done.value == (True, False, 5, 8)


def test_mmio_requires_port():
    system = build_mini_system()
    core = make_core(system)

    def program(ctx):
        yield from ctx.mmio_read(0xF0000000)

    core.run(program)
    with pytest.raises(RuntimeError):
        system.sim.run()


# --------------------------------------------------------------------------- #
# MMIO map and port
# --------------------------------------------------------------------------- #
def test_mmio_map_register_and_resolve():
    mmio_map = MmioMap()
    region = mmio_map.register(size=0x100, node=3, target="dev", name="echo")
    assert mmio_map.resolve(region.base + 8).node == 3
    with pytest.raises(MmioError):
        mmio_map.resolve(0x10)


def test_mmio_map_rejects_overlap():
    mmio_map = MmioMap()
    mmio_map.register(size=0x100, node=0, target="a", base=0xF0000000)
    with pytest.raises(MmioError):
        mmio_map.register(size=0x10, node=1, target="b", base=0xF0000080)


def test_mmio_read_write_roundtrip():
    system = build_mini_system()
    mmio_map = MmioMap()
    device = EchoDevice(system, node=3)
    region = mmio_map.register(size=0x100, node=3, target="dev", name="echo")
    core = make_core(system, mmio_map=mmio_map)

    def program(ctx):
        yield from ctx.mmio_write(region.base, 0x55)
        value = yield from ctx.mmio_read(region.base)
        return value

    process = core.run(program)
    system.sim.run()
    assert process.done.value == 0x55
    assert device.values[region.base] == 0x55


def test_mmio_strict_ordering_serializes_accesses():
    """Two programs sharing one MMIO port never overlap their transactions."""
    system = build_mini_system()
    mmio_map = MmioMap()
    EchoDevice(system, node=3, latency_cycles=20)
    region = mmio_map.register(size=0x100, node=3, target="dev")
    core = make_core(system, mmio_map=mmio_map)
    durations = []

    def program(ctx):
        start = ctx.now
        yield from ctx.mmio_read(region.base)
        durations.append(ctx.now - start)

    system.sim.process(program(core.context))
    system.sim.process(program(core.context))
    system.sim.run()
    assert len(durations) == 2
    # The second access waited for the first: it takes roughly twice as long.
    assert max(durations) > 1.8 * min(durations)


def test_mmio_latency_recorded():
    system = build_mini_system()
    mmio_map = MmioMap()
    EchoDevice(system, node=2, latency_cycles=5)
    region = mmio_map.register(size=0x40, node=2, target="dev")
    core = make_core(system, mmio_map=mmio_map)

    def program(ctx):
        yield from ctx.mmio_read(region.base)

    core.run(program)
    system.sim.run()
    assert core.mmio.mean_latency_ns("mmio_read") > 5.0


# --------------------------------------------------------------------------- #
# Synchronization primitives
# --------------------------------------------------------------------------- #
def test_spinlock_mutual_exclusion_and_counter():
    system = build_mini_system(num_agents=4)
    cores = [make_core(system, i) for i in range(4)]
    lock = SpinLock(system.memory)
    shared = system.memory.allocate(16)
    in_critical = {"count": 0, "max": 0}

    def program(ctx):
        for _ in range(5):
            yield from lock.acquire(ctx)
            in_critical["count"] += 1
            in_critical["max"] = max(in_critical["max"], in_critical["count"])
            value = yield from ctx.load(shared)
            yield from ctx.compute(10)
            yield from ctx.store(shared, value + 1)
            in_critical["count"] -= 1
            yield from lock.release(ctx)

    for core in cores:
        core.run(program)
    system.sim.run(max_events=5_000_000)
    assert system.memory.read_word(shared) == 20
    assert in_critical["max"] == 1


def test_mcs_lock_mutual_exclusion_and_fifo_fairness():
    system = build_mini_system(num_agents=4)
    cores = [make_core(system, i) for i in range(4)]
    lock = McsLock(system.memory, max_threads=4)
    shared = system.memory.allocate(16)

    def program(ctx, thread):
        for _ in range(4):
            yield from lock.acquire(ctx, thread)
            value = yield from ctx.load(shared)
            yield from ctx.compute(20)
            yield from ctx.store(shared, value + 1)
            yield from lock.release(ctx, thread)

    for i, core in enumerate(cores):
        core.run(program, i)
    system.sim.run(max_events=10_000_000)
    assert system.memory.read_word(shared) == 16


def test_barrier_synchronizes_all_threads():
    system = build_mini_system(num_agents=4)
    cores = [make_core(system, i) for i in range(4)]
    barrier = Barrier(system.memory, num_threads=4)
    phase_times = {0: [], 1: []}

    def program(ctx, thread):
        # Threads do wildly different amounts of work before the barrier.
        yield from ctx.compute((thread + 1) * 200)
        yield from barrier.wait(ctx, thread)
        phase_times[0].append(ctx.now)
        yield from ctx.compute(50)
        yield from barrier.wait(ctx, thread)
        phase_times[1].append(ctx.now)

    for i, core in enumerate(cores):
        core.run(program, i)
    system.sim.run(max_events=10_000_000)
    for phase in (0, 1):
        assert len(phase_times[phase]) == 4
        # Nobody leaves the barrier before the slowest participant arrives.
        assert max(phase_times[phase]) - min(phase_times[phase]) < 400.0
    assert min(phase_times[0]) >= 4 * 200


def test_barrier_requires_participants():
    system = build_mini_system()
    with pytest.raises(ValueError):
        Barrier(system.memory, num_threads=0)


def test_lock_contention_scales_runtime():
    """More contenders on one spin lock means longer total runtime."""

    def run_with(n):
        system = build_mini_system(width=4, height=4, num_agents=n)
        cores = [make_core(system, i) for i in range(n)]
        lock = SpinLock(system.memory)

        def program(ctx):
            for _ in range(5):
                yield from lock.acquire(ctx)
                yield from ctx.compute(20)
                yield from lock.release(ctx)

        for core in cores:
            core.run(program)
        system.sim.run(max_events=20_000_000)
        return system.sim.now

    assert run_with(8) > run_with(2)
