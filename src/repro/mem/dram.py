"""Main memory: a flat-latency DRAM model with a functional backing store.

The backing store keeps word-granular values so that workloads (locks,
queues, sorted arrays, graph frontiers) can round-trip real data through the
simulated memory system.  Values are kept globally coherent — the timing
model, not per-cache data copies, is what the evaluation measures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.config import MemoryConfig
from repro.sim import StatSet


class MainMemory:
    """Word-addressable backing store with a fixed access latency."""

    def __init__(self, config: MemoryConfig, latency_ns: Optional[float] = None) -> None:
        self.config = config
        self.latency_ns = config.dram_latency_ns if latency_ns is None else latency_ns
        self._words: Dict[int, int] = {}
        self.stats = StatSet("dram")
        #: Energy-accounting hook (see ``repro.power``); ``None`` unless the
        #: system was built with ``PowerConfig(enabled=True)``.  Row
        #: activations are charged where DRAM latency is charged — on LLC
        #: misses in the directory — not on functional backing-store reads,
        #: which also fire on cache hits.
        self.power_probe = None
        self._next_alloc = 0x1000_0000

    # ------------------------------------------------------------------ #
    # Functional access (zero-time; timing is charged by the caller)
    # ------------------------------------------------------------------ #
    def read_word(self, addr: int) -> int:
        self.stats.counter("reads").increment()
        return self._words.get(self._align(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        self.stats.counter("writes").increment()
        self._words[self._align(addr)] = value

    def read_modify_write(self, addr: int, fn) -> int:
        """Atomically apply ``fn(old) -> new``; returns the old value."""
        aligned = self._align(addr)
        old = self._words.get(aligned, 0)
        self._words[aligned] = fn(old)
        self.stats.counter("rmw").increment()
        return old

    def _align(self, addr: int) -> int:
        return (addr // self.config.word_bytes) * self.config.word_bytes

    # ------------------------------------------------------------------ #
    # Simple bump allocator for workloads
    # ------------------------------------------------------------------ #
    def allocate(self, size_bytes: int, align: Optional[int] = None) -> int:
        """Reserve a region of the simulated address space and return its base."""
        align = align or self.config.line_bytes
        base = ((self._next_alloc + align - 1) // align) * align
        self._next_alloc = base + size_bytes
        return base

    def __len__(self) -> int:
        return len(self._words)
