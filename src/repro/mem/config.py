"""Memory system configuration.

Defaults follow the Dolly prototype described in Sec. IV of the paper:
16-byte cache lines, 8 KB L1D, private write-back 8 KB L2, 64 KB LLC shard
per tile, and an L2 store port limited to 8 bytes (the paper calls this out
as the reason CPU-pull bandwidth tops out below eFPGA-pull bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MemoryConfig:
    """Sizes, associativities and latencies of the cache hierarchy."""

    line_bytes: int = 16
    word_bytes: int = 8

    l1_size_bytes: int = 8 * 1024
    l1_assoc: int = 4
    l1_latency_cycles: int = 1

    l2_size_bytes: int = 8 * 1024
    l2_assoc: int = 4
    l2_latency_cycles: int = 3

    llc_shard_size_bytes: int = 64 * 1024
    llc_assoc: int = 4
    llc_latency_cycles: int = 6

    dram_latency_ns: float = 60.0

    #: Maximum store size supported by the private L2 port (paper Sec. V-C).
    max_store_bytes: int = 8

    #: MSHR-style limit on outstanding misses per private cache agent.
    max_outstanding_misses: int = 8

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.word_bytes <= 0 or self.line_bytes % self.word_bytes:
            raise ValueError("word_bytes must divide line_bytes")
        for name in ("l1", "l2"):
            size = getattr(self, f"{name}_size_bytes")
            assoc = getattr(self, f"{name}_assoc")
            if size % (self.line_bytes * assoc):
                raise ValueError(f"{name} size must be a multiple of line_bytes * assoc")

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    def lines_in(self, size_bytes: int) -> int:
        return size_bytes // self.line_bytes
