"""Pluggable-topology and batched-reservation tests for the NoC.

Three layers:

* routing-contract property tests — every topology must produce routes
  whose length equals ``hop_count``, that are contiguous, neighbour-valid
  and deterministic;
* network invariants on every fabric — per-link FIFO order under
  contention, delivery on every topology, platform plumbing;
* the batched-reservation golden test — delivery times on the mesh must be
  bit-identical to the seed's per-hop generator loop for single-source
  traffic (the recording in ``tests/data/noc_golden_mesh.json`` was made
  with the seed implementation; see docs/noc.md for the model's
  equivalence domain).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import (
    TOPOLOGY_KINDS,
    Crossbar,
    Mesh2D,
    MessagePlane,
    MeshNetwork,
    NocMessage,
    NocNetwork,
    Ring,
    Torus2D,
    make_topology,
)
from repro.sim import ClockDomain, Delay, Simulator

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

ALL_KINDS = tuple(sorted(TOPOLOGY_KINDS))


# --------------------------------------------------------------------------- #
# Routing contract (every topology)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ALL_KINDS)
@given(
    width=st.integers(min_value=1, max_value=5),
    height=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_route_length_matches_hop_count_on_every_topology(kind, width, height, data):
    topology = make_topology(kind, width, height)
    src = data.draw(st.integers(min_value=0, max_value=topology.node_count - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topology.node_count - 1))
    route = topology.route(src, dst)
    assert len(route) == topology.hop_count(src, dst)
    # Contiguous, neighbour-valid, ends at dst.
    current = src
    for a, b in route:
        assert a == current
        assert b in topology.neighbors(a)
        current = b
    assert current == dst
    if src == dst:
        assert route == ()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_routes_are_deterministic_and_cached(kind):
    topology = make_topology(kind, 4, 4)
    route_one = topology.route(1, topology.node_count - 1)
    route_two = topology.route(1, topology.node_count - 1)
    assert route_one == route_two
    assert route_one is route_two  # cached, immutable
    fresh = make_topology(kind, 4, 4)
    assert fresh.route(1, fresh.node_count - 1) == route_one


def test_torus_takes_the_wraparound_shortcut():
    torus = Torus2D(4, 4)
    mesh = Mesh2D(4, 4)
    # (0,0) -> (3,0): 3 mesh hops, 1 torus hop around the seam.
    assert mesh.hop_count(0, 3) == 3
    assert torus.hop_count(0, 3) == 1
    assert torus.route(0, 3) == ((0, 3),)
    # The half-way tie on an even dimension breaks toward +x.
    assert torus.route(0, 2) == ((0, 1), (1, 2))


def test_ring_takes_the_shorter_direction():
    ring = Ring(8)
    assert ring.hop_count(0, 6) == 2
    assert ring.route(0, 6) == ((0, 7), (7, 6))
    assert ring.route(0, 3) == ((0, 1), (1, 2), (2, 3))
    # The exact half-way tie goes forward.
    assert ring.route(0, 4) == ((0, 1), (1, 2), (2, 3), (3, 4))


def test_crossbar_is_single_hop():
    xbar = Crossbar(9)
    for dst in range(1, 9):
        assert xbar.route(0, dst) == ((0, dst),)
        assert xbar.hop_count(0, dst) == 1
    assert xbar.route(4, 4) == ()
    assert sorted(xbar.neighbors(3)) == [n for n in range(9) if n != 3]


def test_make_topology_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_topology("hypercube", 4, 4)


def test_topology_rejects_out_of_range_nodes():
    for kind in ALL_KINDS:
        topology = make_topology(kind, 3, 3)
        with pytest.raises(ValueError):
            topology.route(0, topology.node_count)
        with pytest.raises(ValueError):
            topology.hop_count(-1, 0)


# --------------------------------------------------------------------------- #
# Network invariants on every fabric
# --------------------------------------------------------------------------- #
def _build_network(kind, width=4, height=4):
    sim = Simulator()
    clock = ClockDomain(sim, 1000.0, "sys")
    network = NocNetwork(sim, clock, width, height, topology=kind)
    for node in range(network.node_count):
        network.attach(node, lambda message: None)
    return sim, network


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_network_delivers_on_every_topology(kind):
    sim, network = _build_network(kind)
    far = network.node_count - 1
    received = []
    network.detach(far)
    network.attach(far, received.append)
    msg = NocMessage(src=0, dst=far, kind="ping")
    done = network.send(msg)
    sim.run()
    assert received == [msg]
    assert done.triggered
    assert msg.timestamps["delivered"] > msg.timestamps["injected"]


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_per_link_fifo_order_under_contention(kind):
    """Messages between the same (src, dst) pair arrive in injection order
    even when the shared route is saturated."""
    sim, network = _build_network(kind)
    far = network.node_count - 1
    received = []
    network.detach(far)
    network.attach(far, lambda m: received.append(m.meta["seq"]))

    def sender():
        for seq in range(30):
            network.send(NocMessage(src=0, dst=far, kind="data",
                                    size_bytes=16, meta={"seq": seq}))
            if seq % 3 == 0:
                yield Delay(0.4)
        yield Delay(0.0)

    sim.process(sender())
    sim.run()
    assert received == list(range(30))


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_contention_increases_latency_on_every_topology(kind):
    def run(bursts):
        sim, network = _build_network(kind)
        far = network.node_count - 1
        done = []
        for _ in range(bursts):
            for _ in range(10):
                done.append(network.send(
                    NocMessage(src=0, dst=far, kind="data", size_bytes=32)))
        sim.run()
        return max(event.value for event in done)

    assert run(4) > run(1)


def test_mesh_network_alias_still_works():
    sim = Simulator()
    clock = ClockDomain(sim, 1000.0)
    network = MeshNetwork(sim, clock, 2, 2)
    assert isinstance(network, NocNetwork)
    assert network.topology.kind == "mesh"
    assert network.node_count == 4


def test_network_requires_dimensions_without_topology_instance():
    sim = Simulator()
    clock = ClockDomain(sim, 1000.0)
    with pytest.raises(ValueError):
        NocNetwork(sim, clock)
    network = NocNetwork(sim, clock, topology=Ring(5))
    assert network.node_count == 5


def test_mean_latency_is_zero_with_no_messages_and_reuses_histogram():
    sim, network = _build_network("mesh")
    assert network.mean_latency_ns() == 0.0
    network.send(NocMessage(src=0, dst=network.node_count - 1, kind="x"))
    sim.run()
    assert network.mean_latency_ns() > 0.0
    assert network.mean_latency_ns() == network.stats.histogram("message_latency_ns").mean


# --------------------------------------------------------------------------- #
# Platform plumbing
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_dolly_config_selects_noc_topology(kind):
    from repro.platform.config import DollyConfig
    from repro.platform.dolly import build_system

    system = build_system(DollyConfig.dolly(2, 1, noc_topology=kind))
    assert system.network.topology.kind == kind
    if kind in ("ring", "crossbar"):
        assert system.plan.height == 1


def test_dolly_config_rejects_unknown_topology():
    from repro.platform.config import DollyConfig

    with pytest.raises(ValueError):
        DollyConfig.dolly(2, 1, noc_topology="moebius")


@pytest.mark.parametrize("kind", ("torus", "ring", "crossbar"))
def test_coherent_traffic_runs_on_alternate_fabrics(kind):
    """The directory protocol's correctness must not depend on the mesh."""
    from conftest import build_mini_system

    system = build_mini_system(width=2, height=2, num_agents=2, topology=kind)
    agent_zero, agent_one = system.agents[0], system.agents[1]

    def writer():
        yield from agent_zero.store(0x40, 123)
        yield from agent_one.store(0x40, 456)
        value = yield from agent_zero.load(0x40)
        return value

    assert system.sim.run_process(writer()) == 456


# --------------------------------------------------------------------------- #
# Batched reservation: golden equivalence with the seed per-hop model
# --------------------------------------------------------------------------- #
def _golden_network():
    sim = Simulator()
    clock = ClockDomain(sim, 1000.0, "sys")
    network = NocNetwork(sim, clock, 4, 4)
    for node in range(16):
        network.attach(node, lambda m: None)
    return sim, network


def _record(network, records, seq, msg):
    event = network.send(msg)
    event.add_callback(
        lambda _value, msg=msg, seq=seq: records.append(
            [seq, msg.timestamps["injected"], msg.timestamps["delivered"]]))


def _scenario_stream():
    sim, network = _golden_network()
    records = []
    seq = 0

    def sender():
        nonlocal seq
        for _burst in range(8):
            for index in range(5):
                msg = NocMessage(src=0, dst=15, kind="w", size_bytes=8 * (index % 4))
                _record(network, records, seq, msg)
                seq += 1
            yield Delay(3.7)

    sim.process(sender())
    sim.run()
    return records


def _scenario_pingpong():
    sim, network = _golden_network()
    records = []

    def driver():
        seq = 0
        for _ in range(20):
            req = NocMessage(src=0, dst=15, kind="req", size_bytes=0,
                             plane=MessagePlane.REQUEST)
            _record(network, records, seq, req)
            seq += 1
            yield network.send(NocMessage(src=0, dst=15, kind="pad"))
            resp = NocMessage(src=15, dst=0, kind="resp", size_bytes=16,
                              plane=MessagePlane.RESPONSE)
            _record(network, records, seq, resp)
            seq += 1
            yield Delay(1.3)

    sim.process(driver())
    sim.run()
    return records


def _scenario_fanout():
    sim, network = _golden_network()
    records = []

    def sender():
        seq = 0
        for _round in range(6):
            for dst in range(16):
                msg = NocMessage(src=5, dst=dst, kind="f", size_bytes=8 * (dst % 3))
                _record(network, records, seq, msg)
                seq += 1
            yield Delay(2.0)

    sim.process(sender())
    sim.run()
    return records


def _scenario_merge_batched():
    """Cross-source merge traffic — pins the *batched* model's behaviour.

    Unlike the seed-recorded scenarios above, this recording was made with
    the batched implementation itself: where routes from different sources
    merge, injection-order reservation legitimately differs from the seed's
    per-hop arrival order (docs/noc.md documents the refinement, and the
    fig11/fig12 aggregates shifted by well under a percent when it landed).
    Pinning it keeps future NoC changes from silently moving the contended
    regime the way this PR deliberately did.
    """
    sim = Simulator()
    clock = ClockDomain(sim, 1000.0, "sys")
    network = NocNetwork(sim, clock, 4, 1)
    for node in range(4):
        network.attach(node, lambda m: None)
    records = []
    seq_box = [0]

    def sender(src, count, gap):
        for _ in range(count):
            msg = NocMessage(src=src, dst=3, kind="m", size_bytes=16)
            _record(network, records, seq_box[0], msg)
            seq_box[0] += 1
            yield Delay(gap)

    sim.process(sender(0, 20, 1.0))
    sim.process(sender(1, 20, 1.5))
    sim.process(sender(2, 20, 0.7))
    sim.run()
    return records


#: Scenarios recorded with the seed's per-hop loop (bit-identity required).
_SEED_GOLDEN_SCENARIOS = {
    "stream": _scenario_stream,
    "pingpong": _scenario_pingpong,
    "fanout": _scenario_fanout,
}

#: Scenarios recorded with the batched model (regression pin, see above).
_BATCHED_GOLDEN_SCENARIOS = {
    "merge_batched": _scenario_merge_batched,
}


def test_batched_reservation_matches_mesh_golden():
    """Delivery times must match the committed golden recordings exactly.

    The ``stream``/``pingpong``/``fanout`` sections were generated with the
    seed's per-hop generator loop — the batched implementation must
    reproduce every injection and delivery instant bit for bit (same-instant
    delivery *order* is compared by message, not by callback order).  The
    ``merge_batched`` section pins the batched model's own multi-source
    behaviour so the contended regime cannot drift unnoticed again.
    """
    with open(os.path.join(DATA_DIR, "noc_golden_mesh.json")) as handle:
        golden = json.load(handle)
    scenarios = {**_SEED_GOLDEN_SCENARIOS, **_BATCHED_GOLDEN_SCENARIOS}
    assert set(golden) == set(scenarios)
    for name, scenario in scenarios.items():
        measured = sorted(scenario())
        expected = [[seq, float(injected), float(delivered)]
                    for seq, injected, delivered in golden[name]]
        assert measured == expected, f"scenario {name!r} diverged from golden timing"


def test_merge_traffic_is_deterministic():
    """Cross-source merge traffic (where batched reservation legitimately
    refines the seed model) must still be run-to-run deterministic."""
    def run():
        sim = Simulator()
        clock = ClockDomain(sim, 1000.0, "sys")
        network = NocNetwork(sim, clock, 4, 1)
        for node in range(4):
            network.attach(node, lambda m: None)
        deliveries = []

        def sender(src, count, gap):
            for index in range(count):
                msg = NocMessage(src=src, dst=3, kind="m", size_bytes=16,
                                 meta={"tag": (src, index)})
                event = network.send(msg)
                event.add_callback(
                    lambda _v, msg=msg: deliveries.append(
                        (msg.meta["tag"], msg.timestamps["delivered"])))
                yield Delay(gap)

        sim.process(sender(0, 15, 1.0))
        sim.process(sender(1, 15, 1.5))
        sim.process(sender(2, 15, 0.7))
        sim.run()
        return deliveries

    first, second = run(), run()
    assert first == second
    assert len(first) == 45
