"""Island-style eFPGA fabric resource model.

The fabric is a grid of tiles.  Most columns hold configurable logic blocks
(CLBs, each with ``luts_per_clb`` fracturable LUT6s and as many flip-flops);
every ``bram_column_period``-th column holds Block RAMs; a small number of
columns hold hard multipliers (DSPs).  This mirrors the VTR flagship
architecture the paper maps its accelerators onto
(``k6_frac_N10_frac_chain_mem32K_40nm``, an Altera Stratix-IV-like device).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FabricSpec:
    """Per-tile capacities and silicon-area constants of the fabric family."""

    luts_per_clb: int = 10
    ffs_per_clb: int = 20
    bram_kbits_per_tile: int = 32
    dsps_per_tile: int = 1
    #: One column of BRAM tiles for every ``bram_column_period`` CLB columns.
    bram_column_period: int = 8
    #: One column of DSP tiles for every ``dsp_column_period`` CLB columns.
    dsp_column_period: int = 16

    # Silicon area per tile (mm^2, 45 nm-scaled) including its share of the
    # routing fabric and configuration memory.  Values chosen so that the
    # accelerators of Table II land near their reported normalized areas.
    clb_tile_area_mm2: float = 0.0145
    bram_tile_area_mm2: float = 0.0190
    dsp_tile_area_mm2: float = 0.0260

    #: Configuration bits per tile (drives bitstream size / programming time).
    config_bits_per_tile: int = 1024


@dataclass
class FabricInstance:
    """A concrete fabric: a ``columns`` x ``rows`` grid of tiles."""

    spec: FabricSpec
    columns: int
    rows: int

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise ValueError("fabric must have at least one column and one row")

    # ------------------------------------------------------------------ #
    # Column accounting
    # ------------------------------------------------------------------ #
    @property
    def bram_columns(self) -> int:
        return self.columns // (self.spec.bram_column_period + 1)

    @property
    def dsp_columns(self) -> int:
        return self.columns // (self.spec.dsp_column_period + 1)

    @property
    def clb_columns(self) -> int:
        return self.columns - self.bram_columns - self.dsp_columns

    # ------------------------------------------------------------------ #
    # Capacities
    # ------------------------------------------------------------------ #
    @property
    def total_clbs(self) -> int:
        return self.clb_columns * self.rows

    @property
    def total_luts(self) -> int:
        return self.total_clbs * self.spec.luts_per_clb

    @property
    def total_ffs(self) -> int:
        return self.total_clbs * self.spec.ffs_per_clb

    @property
    def total_bram_kbits(self) -> int:
        return self.bram_columns * self.rows * self.spec.bram_kbits_per_tile

    @property
    def total_bram_tiles(self) -> int:
        return self.bram_columns * self.rows

    @property
    def total_dsps(self) -> int:
        return self.dsp_columns * self.rows * self.spec.dsps_per_tile

    @property
    def total_tiles(self) -> int:
        return self.columns * self.rows

    # ------------------------------------------------------------------ #
    # Area and configuration
    # ------------------------------------------------------------------ #
    @property
    def area_mm2(self) -> float:
        spec = self.spec
        return (
            self.total_clbs * spec.clb_tile_area_mm2
            + self.total_bram_tiles * spec.bram_tile_area_mm2
            + self.dsp_columns * self.rows * spec.dsp_tile_area_mm2
        )

    @property
    def config_bits(self) -> int:
        return self.total_tiles * self.spec.config_bits_per_tile

    # ------------------------------------------------------------------ #
    # Region grid (partial reconfiguration)
    # ------------------------------------------------------------------ #
    def region_columns(self, regions: int) -> tuple:
        """Split the fabric into ``regions`` contiguous column bands.

        PRGA-style partial reconfiguration treats the fabric as an array of
        regions, each with its own configuration chain; a band covers whole
        columns so its configuration bits are a multiple of the per-tile
        bits.  Columns divide as evenly as possible, extras to the leftmost
        bands, so the split is deterministic.
        """
        if regions < 1:
            raise ValueError(f"need at least one region, got {regions}")
        if regions > self.columns:
            raise ValueError(
                f"cannot split {self.columns} columns into {regions} regions"
            )
        base, extra = divmod(self.columns, regions)
        return tuple(base + (1 if index < extra else 0)
                     for index in range(regions))

    def region_tile_capacities(self, regions: int) -> tuple:
        """Tiles per region band (the capacity the placement ladder packs)."""
        return tuple(cols * self.rows for cols in self.region_columns(regions))

    def region_config_bits(self, regions: int) -> tuple:
        """Configuration bits per region band.

        Sums to :attr:`config_bits` exactly; each entry is what one
        region-granular reprogram transfers through the Control Hub.
        """
        bits = self.spec.config_bits_per_tile
        return tuple(tiles * bits for tiles in self.region_tile_capacities(regions))

    def fits(self, clbs: int, bram_kbits: int, dsps: int) -> bool:
        """Whether a design needing the given resources fits this fabric."""
        return (
            clbs <= self.total_clbs
            and bram_kbits <= self.total_bram_kbits
            and dsps <= self.total_dsps
        )

    @classmethod
    def minimal_for(
        cls, spec: FabricSpec, clbs: int, bram_kbits: int, dsps: int, slack: float = 1.15
    ) -> "FabricInstance":
        """Smallest near-square fabric that fits the given resources.

        ``slack`` reserves headroom for routing congestion, matching the way
        real place-and-route cannot use 100% of a device.
        """
        clbs = max(1, math.ceil(clbs * slack))
        bram_kbits = max(0, bram_kbits)
        dsps = max(0, dsps)
        side = max(2, math.isqrt(clbs) + 1)
        while True:
            candidate = cls(spec, columns=side, rows=side)
            if candidate.fits(clbs, bram_kbits, dsps):
                return candidate
            side += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FabricInstance {self.columns}x{self.rows} {self.area_mm2:.2f}mm2>"
