"""Fig. 10: single-processor CPU–eFPGA bandwidth vs eFPGA clock frequency."""

from conftest import FULL

from repro.api import Runner


def test_fig10_communication_bandwidth(benchmark):
    frequencies = (20.0, 50.0, 100.0, 200.0, 500.0) if FULL else (100.0, 500.0)
    quad_words = 512 if FULL else 64
    results = benchmark.pedantic(
        Runner().run, args=("fig10",),
        kwargs={"fpga_mhz": frequencies, "quad_words": quad_words},
        rounds=1, iterations=1,
    )
    print()
    print(results.to_table(
        columns=["mechanism", "fpga_mhz", "measured_mbytes_per_s", "paper_peak_mbytes_per_s"],
        headers=["Mechanism", "eFPGA MHz", "Measured MB/s", "Paper peak MB/s"],
        title=f"Fig. 10 — Processor-eFPGA Bandwidth ({quad_words} quad-words)",
    ))
    by_key = {(r.mechanism, r.fpga_mhz): r.measured_mbytes_per_s for r in results}
    top = max(frequencies)
    # Shape checks mirroring the paper:
    # 1. The Proxy Cache delivers the highest bandwidth of all mechanisms.
    peak_proxy = max(by_key[("efpga_pull_proxy", f)] for f in frequencies)
    assert peak_proxy == max(by_key.values())
    # 2. eFPGA pull sustains more bandwidth than CPU pull (8-byte store port).
    assert by_key[("efpga_pull_proxy", top)] > by_key[("cpu_pull_proxy", top)]
    # 3. Shadow registers beat normal registers at every frequency.
    for freq in frequencies:
        assert by_key[("shadow_reg", freq)] > by_key[("normal_reg", freq)]
    # 4. Duet beats the slow-cache FPSoC path for eFPGA pulls at every frequency.
    for freq in frequencies:
        assert by_key[("efpga_pull_proxy", freq)] > by_key[("efpga_pull_slow", freq)]
