"""Lightweight statistics collection.

Components accumulate counters and latency samples into a :class:`StatSet`;
the analysis layer reads them back to build the latency breakdowns and
bandwidth numbers reported in the paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class Histogram:
    """Accumulates scalar samples and reports summary statistics."""

    name: str
    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(value)

    def reset(self) -> None:
        self.samples.clear()

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Return the ``fraction`` percentile (0..1) using nearest-rank."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]


class StatSet:
    """A named collection of counters and histograms.

    Components create their stats lazily with :meth:`counter` and
    :meth:`histogram`, so tests and experiments can introspect whatever was
    actually exercised.
    """

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def merge(self, other: "StatSet") -> None:
        """Fold ``other``'s counters and samples into this set."""
        for name, counter in other._counters.items():
            self.counter(name).increment(counter.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).samples.extend(histogram.samples)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (counters plus histogram means)."""
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, histogram in self._histograms.items():
            flat[f"{name}.mean"] = histogram.mean
            flat[f"{name}.count"] = histogram.count
        return flat


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))
