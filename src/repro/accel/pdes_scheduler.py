"""Hardware task scheduler for parallel discrete event simulation (PDES).

Sec. III-B2 and V-D: an eFPGA-emulated, non-speculative task scheduler
replaces the software event queue (arbitrated with MCS locks in the
processor-only baseline).  Processors schedule new events by pushing
(timestamp, payload) pairs into an FPGA-bound FIFO; the scheduler keeps a
priority queue in its BRAM and streams ready events — events whose timestamp
does not exceed the current global window — into a CPU-bound FIFO from which
the processors pull work with a single MMIO read.

The window advances conservatively: when no event earlier than the window
bound remains and all dispatched events have been committed, the scheduler
advances to the next pending timestamp (the classic conservative PDES
lower-bound-on-timestamp rule).
"""

from __future__ import annotations

import heapq
from typing import List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

STOP_COMMAND = (1 << 62)
#: Value handed to a processor when no event is ready yet (retry later).
EMPTY_HANDLE = (1 << 61)
#: Pushed by processors after finishing an event (commit notification).
COMMIT_COMMAND = (1 << 60)
#: Termination flush: the low bits carry how many EMPTY_HANDLE responses to
#: emit so that processors blocked on the ready FIFO wake up and exit.
FLUSH_COMMAND = (1 << 59)

REG_SCHEDULE = 0     # FPGA-bound FIFO: (timestamp << 32) | payload, or control commands
REG_READY = 1        # CPU-bound FIFO: ready events, same encoding
REG_WINDOW = 2       # plain: current simulation window (read by processors)
REG_PENDING = 3      # plain: number of pending events (diagnostics)


def register_layout() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_SCHEDULE, RegisterKind.FPGA_BOUND_FIFO, "schedule", depth=64),
        RegisterSpec(REG_READY, RegisterKind.CPU_BOUND_FIFO, "ready", depth=64),
        RegisterSpec(REG_WINDOW, RegisterKind.PLAIN, "window"),
        RegisterSpec(REG_PENDING, RegisterKind.PLAIN, "pending"),
    ]


def encode_event(timestamp: int, payload: int) -> int:
    return (timestamp << 32) | (payload & 0xFFFF_FFFF)


def decode_event(word: int):
    return word >> 32, word & 0xFFFF_FFFF


class PdesSchedulerAccelerator(SoftAccelerator):
    """A conservative, non-speculative hardware event scheduler."""

    DESIGN = AcceleratorDesign(
        name="pdes",
        luts=2400,
        ffs=2900,
        bram_kbits=64,
        dsps=0,
        logic_depth=14,
        routing_pressure=0.4,
        mem_ports=1,
        description="Non-speculative hardware task scheduler for PDES",
    )

    #: Cycles to insert into / pop from the BRAM priority queue.
    QUEUE_CYCLES = 2

    def __init__(self, name: str = "pdes-scheduler") -> None:
        super().__init__(name)
        self.scheduled = 0
        self.dispatched = 0

    def behavior(self):
        event_queue: List[int] = []   # heap of encoded events
        outstanding = 0               # dispatched but not yet committed
        window = 0
        while True:
            command = yield from self.regs.pop_request(REG_SCHEDULE)
            if command == STOP_COMMAND:
                return self.dispatched
            yield self.cycles(self.QUEUE_CYCLES)
            if command & FLUSH_COMMAND:
                for _ in range(command & 0xFFFF):
                    yield from self.regs.push_response(REG_READY, EMPTY_HANDLE)
                continue
            if command == COMMIT_COMMAND:
                outstanding = max(0, outstanding - 1)
            else:
                heapq.heappush(event_queue, command)
                self.scheduled += 1
            # Conservative window advance: only when nothing is in flight.
            if outstanding == 0 and event_queue:
                window = max(window, decode_event(event_queue[0])[0])
                yield from self.regs.write(REG_WINDOW, window)
            # Dispatch every event inside the current window.
            while event_queue and decode_event(event_queue[0])[0] <= window:
                ready = heapq.heappop(event_queue)
                yield self.cycles(self.QUEUE_CYCLES)
                yield from self.regs.push_response(REG_READY, ready)
                outstanding += 1
                self.dispatched += 1
            yield from self.regs.write(REG_PENDING, len(event_queue))
            self.stats.counter("commands").increment()
