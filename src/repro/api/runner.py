"""Experiment execution: serial / process-pool executors plus result caching.

The :class:`Runner` turns an :class:`~repro.api.spec.ExperimentSpec` into a
:class:`~repro.api.results.ResultSet`:

* ``executor="serial"`` runs every cell in-process, in grid order;
* ``executor="process"`` fans independent cells out over a
  ``concurrent.futures.ProcessPoolExecutor`` — rows come back in the same
  deterministic grid order as the serial path.  The pool is created lazily
  on the first run that needs it and *reused* for every later cell and
  every later ``run()`` call on the same :class:`Runner` (worker startup
  costs an interpreter fork + module imports, which used to be paid per
  ``run()``); call :meth:`Runner.close` — or use the runner as a context
  manager — to tear the workers down;
* passing ``cache_dir`` enables on-disk JSON caching keyed by
  (experiment name, cell parameters): a cell whose exact parameters were
  measured before is served from ``<cache_dir>/<experiment>/<sha256[:16]>.json``
  without re-simulation.

Cache layout::

    <cache_dir>/
        fig9/
            1f0c2a....json   # {"experiment", "params", "rows"}
        fig12/
            ...
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.api.registry import get_experiment
from repro.api.results import ResultSet, Row, RunStats
from repro.api.spec import ExperimentSpec, Rows

#: Bump when row schemas change incompatibly; invalidates every cache entry.
CACHE_SCHEMA_VERSION = 1

EXECUTORS = ("serial", "process")


def _call_cell(cell, params: Dict[str, Any]) -> Rows:
    """Module-level trampoline so the process pool only pickles (fn, params)."""
    return cell(**params)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity support
        return os.cpu_count() or 1


def _cell_key(experiment: str, params: Mapping[str, Any]) -> str:
    payload = json.dumps(
        {"experiment": experiment, "schema": CACHE_SCHEMA_VERSION,
         "params": dict(params)},
        sort_keys=True, default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class Runner:
    """Executes experiments from the registry (or ad-hoc specs).

    Example::

        runner = Runner(executor="process", workers=4, cache_dir=".repro-cache")
        results = runner.run("fig12")            # full grid, fanned out + cached
        subset = runner.run("fig9", fpga_mhz=(100.0,))   # axis override
    """

    def __init__(self, executor: str = "serial", workers: Optional[int] = None,
                 cache_dir: Optional[str] = None, seed: Optional[int] = None) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.executor = executor
        self.workers = workers
        self.cache_dir = cache_dir
        self.seed = seed
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _get_pool(self, pending: int) -> ProcessPoolExecutor:
        """The shared process pool, created on first use and reused after.

        Sized by ``workers`` when given, else by the smaller of the pending
        cell count and the CPU budget; a later run with more cells than the
        pool has workers still completes (extra cells queue).
        """
        if self._pool is None:
            workers = self.workers or min(max(pending, 1), _available_cpus())
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_workers = workers
        return self._pool

    def close(self) -> None:
        """Shut down the shared process pool (no-op for serial runners)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def run(self, experiment: Union[str, ExperimentSpec],
            use_cache: bool = True, **overrides: Any) -> ResultSet:
        """Run one experiment; ``overrides`` replace grid axes or fixed params."""
        spec = (experiment if isinstance(experiment, ExperimentSpec)
                else get_experiment(experiment))
        if self.seed is not None and "seed" in spec.parameters:
            overrides.setdefault("seed", self.seed)
        cells = spec.cells(overrides)
        started = time.perf_counter()
        results: List[Optional[Rows]] = [None] * len(cells)
        pending: List[int] = []
        hits = 0
        for index, cell in enumerate(cells):
            cached = self._cache_get(spec.name, cell) if use_cache else None
            if cached is not None:
                results[index] = cached
                hits += 1
            else:
                pending.append(index)

        workers_used = 1
        if self.executor == "process" and pending:
            pool = self._get_pool(len(pending))
            workers_used = self._pool_workers
            futures = {index: pool.submit(_call_cell, spec.cell, cells[index])
                       for index in pending}
            for index, future in futures.items():
                results[index] = future.result()
        else:
            for index in pending:
                results[index] = _call_cell(spec.cell, cells[index])

        for index in pending:
            self._cache_put(spec.name, cells[index], results[index])

        rows = [row for cell_rows in results for row in (cell_rows or [])]
        summary = spec.summarize(rows) if spec.summarize is not None else {}
        stats = RunStats(
            cells=len(cells),
            cache_hits=hits,
            cache_misses=len(pending),
            executor=self.executor,
            workers=workers_used,
            elapsed_s=time.perf_counter() - started,
        )
        return ResultSet(spec.name, rows, params=dict(overrides),
                         summary=summary, stats=stats)

    # ------------------------------------------------------------------ #
    # Cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, experiment: str, params: Mapping[str, Any]) -> Optional[str]:
        if self.cache_dir is None:
            return None
        safe_name = experiment.replace(os.sep, "_").replace("/", "_")
        return os.path.join(self.cache_dir, safe_name,
                            _cell_key(experiment, params) + ".json")

    def _cache_get(self, experiment: str, params: Mapping[str, Any]) -> Optional[Rows]:
        path = self._cache_path(experiment, params)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return list(payload["rows"])
        except (OSError, ValueError, KeyError):
            return None  # unreadable entries count as misses and get rewritten

    def _cache_put(self, experiment: str, params: Mapping[str, Any],
                   rows: Optional[Rows]) -> None:
        path = self._cache_path(experiment, params)
        if path is None or rows is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"experiment": experiment, "params": dict(params), "rows": rows}
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, default=str)
        os.replace(tmp_path, path)


def run_experiment(experiment: Union[str, ExperimentSpec], **overrides: Any) -> ResultSet:
    """Convenience one-shot: serial runner, no caching."""
    return Runner().run(experiment, **overrides)
