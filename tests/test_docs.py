"""Documentation hygiene: intra-repo links resolve and key pages exist.

The same checker runs in the CI ``docs`` job (``tools/check_doc_links.py``);
having it in tier-1 keeps broken links from landing in the first place.
"""

import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_doc_links  # noqa: E402


def _read(relpath):
    with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as handle:
        return handle.read()


def test_every_intra_repo_markdown_link_resolves():
    broken = []
    for path in check_doc_links.iter_markdown_files(REPO_ROOT):
        for target, reason in check_doc_links.check_file(path, REPO_ROOT):
            broken.append((os.path.relpath(path, REPO_ROOT), target, reason))
    assert not broken, f"broken markdown links: {broken}"


def test_link_extraction_understands_the_common_forms():
    markdown = (
        "See [a](docs/a.md) and ![img](img.png 'title') plus\n"
        "[ref]: other.md\n"
        "skip [anchor](#section), [web](https://example.com) and\n"
        "```\n[not-a-link](inside/code.md)\n```\n"
    )
    targets = check_doc_links.extract_targets(markdown)
    assert "docs/a.md" in targets and "img.png" in targets and "other.md" in targets
    assert "inside/code.md" not in targets
    checkable = [t for t in targets if check_doc_links.is_checkable(t)]
    assert "#section" not in checkable
    assert "https://example.com" not in checkable


def test_noc_doc_covers_every_topology_and_is_linked():
    noc_doc = _read("docs/noc.md")
    for kind in ("mesh", "torus", "ring", "crossbar"):
        assert f"`{kind}`" in noc_doc, f"docs/noc.md misses topology {kind!r}"
    for section in ("invariants", "Adding a topology", "noc_scaling"):
        assert section in noc_doc
    readme = _read("README.md")
    assert "docs/noc.md" in readme
    assert "docs/architecture.md" in readme
    assert "docs/performance.md" in readme


def test_architecture_doc_maps_the_noc_modules():
    architecture = _read("docs/architecture.md")
    assert "noc_traffic.py" in architecture
    assert "noc.md" in architecture


def test_performance_doc_covers_the_noc_benchmarks():
    from repro import perf

    performance = _read("docs/performance.md")
    for spec in perf.SUITE:
        assert spec.name in performance, f"docs/performance.md misses {spec.name}"
    for gate in perf.DEFAULT_GATES:
        assert gate in performance
