"""Fig. 12: normalized speedup and Area-Delay Product of the applications."""

from conftest import FULL

from repro.analysis import APPLICATION_CONFIGS
from repro.api import Runner, get_experiment

#: The reduced sweep skips the largest-core-count configurations to keep the
#: default benchmark run quick; DUET_BENCH_FULL=1 runs all thirteen.
QUICK_LABELS = (
    "tangent", "popcount", "sort/32", "dijkstra",
    "barnes-hut", "pdes/4", "bfs/4",
)


def test_fig12_application_speedup_and_adp(benchmark):
    labels = tuple(
        config.label for config in APPLICATION_CONFIGS
        if FULL or config.label in QUICK_LABELS
    )
    results = benchmark.pedantic(Runner().run, args=("fig12",),
                                 kwargs={"benchmark": labels},
                                 rounds=1, iterations=1)
    summary = results.summary
    print()
    print(results.to_table(
        columns=["benchmark", "cpu_runtime_ns", "fpsoc_speedup", "duet_speedup",
                 "paper_fpsoc_speedup", "paper_duet_speedup",
                 "fpsoc_norm_adp", "duet_norm_adp", "all_correct"],
        headers=["Benchmark", "CPU runtime (ns)", "FPSoC speedup", "Duet speedup",
                 "Paper FPSoC", "Paper Duet", "FPSoC norm ADP", "Duet norm ADP", "Correct"],
        title=get_experiment("fig12").title,
    ))
    print(
        f"geomean speedup: Duet {summary['duet_geomean_speedup']:.2f}x "
        f"(paper {summary['paper_geomean_speedup']['duet']}x), "
        f"FPSoC {summary['fpsoc_geomean_speedup']:.2f}x "
        f"(paper {summary['paper_geomean_speedup']['fpsoc']}x)"
    )
    print(
        f"geomean normalized ADP: Duet {summary['duet_geomean_adp']:.2f} "
        f"(paper {summary['paper_geomean_adp']['duet']}), "
        f"FPSoC {summary['fpsoc_geomean_adp']:.2f} "
        f"(paper {summary['paper_geomean_adp']['fpsoc']})"
    )
    # Shape checks mirroring the paper's conclusions:
    # every benchmark is functionally correct on all three systems,
    # Duet outperforms the FPSoC baseline on every benchmark, and
    # Duet's geometric-mean speedup over the processor-only baseline
    # exceeds the FPSoC's.
    assert all(r.all_correct for r in results)
    for r in results:
        assert r.duet_speedup > r.fpsoc_speedup, r.benchmark
    assert summary["duet_geomean_speedup"] > 1.0
    assert summary["duet_geomean_speedup"] > summary["fpsoc_geomean_speedup"]
