"""Typed result model for experiment runs.

A :class:`ResultSet` replaces the bare lists-of-dicts the legacy runners
returned: it knows which experiment produced it, with which parameters, and
offers relational-style helpers (``filter`` / ``group_by`` / ``pivot``),
exports (``to_json`` / ``to_csv`` / ``to_table``) and built-in
paper-vs-measured deviation reporting.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import format_table


class Row(dict):
    """One measurement: a dict with attribute access (``row.fpga_mhz``)."""

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass
class RunStats:
    """Execution accounting attached to every :class:`ResultSet`."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executor: str = "serial"
    workers: int = 1
    elapsed_s: float = 0.0


class ResultSet:
    """An ordered collection of :class:`Row` plus experiment metadata."""

    def __init__(
        self,
        experiment: str,
        rows: Sequence[Mapping[str, Any]],
        params: Optional[Mapping[str, Any]] = None,
        summary: Optional[Mapping[str, Any]] = None,
        stats: Optional[RunStats] = None,
    ) -> None:
        self.experiment = experiment
        self.rows: List[Row] = [Row(row) for row in rows]
        self.params: Dict[str, Any] = dict(params or {})
        self.summary: Dict[str, Any] = dict(summary or {})
        self.stats = stats or RunStats(cells=len(self.rows))

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return (self.experiment == other.experiment
                and self.rows == other.rows
                and self.summary == other.summary)

    def __repr__(self) -> str:
        return (f"ResultSet(experiment={self.experiment!r}, rows={len(self.rows)}, "
                f"columns={self.columns})")

    @property
    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Plain ``list[dict]`` copies (the legacy runner return shape)."""
        return [dict(row) for row in self.rows]

    # ------------------------------------------------------------------ #
    # Relational helpers
    # ------------------------------------------------------------------ #
    def filter(self, predicate: Optional[Callable[[Row], bool]] = None,
               **equals: Any) -> "ResultSet":
        """Rows matching ``predicate`` and/or column equality constraints."""
        def keep(row: Row) -> bool:
            if predicate is not None and not predicate(row):
                return False
            return all(row.get(key) == value for key, value in equals.items())

        return ResultSet(self.experiment, [row for row in self.rows if keep(row)],
                         params=self.params, summary=self.summary, stats=self.stats)

    def group_by(self, *keys: str) -> Dict[Union[Any, Tuple[Any, ...]], "ResultSet"]:
        """Partition rows by the given columns (tuple keys for >1 column)."""
        if not keys:
            raise ValueError("group_by needs at least one column")
        groups: Dict[Any, List[Row]] = {}
        for row in self.rows:
            key = tuple(row.get(k) for k in keys)
            groups.setdefault(key[0] if len(keys) == 1 else key, []).append(row)
        return {
            key: ResultSet(self.experiment, rows, params=self.params, stats=self.stats)
            for key, rows in groups.items()
        }

    def percentile(self, column: str, q: float) -> Optional[float]:
        """Nearest-rank percentile of ``column`` over the rows (``q`` in 0..1).

        Ragged data is tolerated: rows missing the column, and rows whose
        value is not a real number (strings, ``None``, booleans), are
        skipped.  Returns ``None`` when no usable value remains, so callers
        can tell "no data" apart from a measured 0.0.  Uses the same
        nearest-rank convention as :meth:`repro.sim.stats.Histogram.percentile`,
        so serve reports and in-sim SLO monitors agree on what "p99" means.
        """
        from repro.sim.stats import Histogram

        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
        values = [
            float(value) for row in self.rows
            for value in (row.get(column),)
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        if not values:
            return None
        return Histogram(column, samples=values).percentile(q)

    def cdf(self, column: str) -> List[Tuple[float, float]]:
        """Empirical CDF of ``column``: sorted ``(value, cumulative_fraction)``
        pairs ending at fraction 1.0.

        Same ragged-data tolerance as :meth:`percentile` — rows missing the
        column or holding non-numeric values are skipped; an empty or fully
        ragged column yields ``[]`` (distinguishable from a single-point
        distribution).  Duplicate values collapse into one point carrying
        the highest fraction, so the pairs are strictly increasing in value
        and plot directly as a step function.
        """
        from repro.obs.decompose import cdf_points

        return cdf_points([row.get(column) for row in self.rows])

    def pivot(self, index: str, columns: str, values: str) -> Tuple[List[str], List[List[Any]]]:
        """A (headers, rows) wide table: one row per ``index`` value, one
        column per distinct ``columns`` value, cells from ``values``."""
        column_values: Dict[Any, None] = {}
        index_values: Dict[Any, None] = {}
        lookup: Dict[Tuple[Any, Any], Any] = {}
        for row in self.rows:
            index_values.setdefault(row.get(index), None)
            column_values.setdefault(row.get(columns), None)
            lookup[(row.get(index), row.get(columns))] = row.get(values)
        headers = [index] + [str(value) for value in column_values]
        table = [
            [idx] + [lookup.get((idx, col)) for col in column_values]
            for idx in index_values
        ]
        return headers, table

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #
    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        payload = {
            "experiment": self.experiment,
            "params": self.params,
            "summary": self.summary,
            "rows": self.to_dicts(),
        }
        text = json.dumps(payload, indent=indent, default=str)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        payload = json.loads(text)
        return cls(payload.get("experiment", ""), payload.get("rows", []),
                   params=payload.get("params"), summary=payload.get("summary"))

    @classmethod
    def load(cls, path: str) -> "ResultSet":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_csv(self, path: Optional[str] = None) -> str:
        columns = self.columns
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in self.rows:
            writer.writerow([row.get(column, "") for column in columns])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_table(self, columns: Optional[Sequence[str]] = None,
                 headers: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
        columns = list(columns) if columns is not None else self.columns
        headers = list(headers) if headers is not None else columns
        return format_table(
            headers,
            [[row.get(column) for column in columns] for row in self.rows],
            title=self.experiment if title is None else title,
        )

    # ------------------------------------------------------------------ #
    # Paper-vs-measured deviation reporting
    # ------------------------------------------------------------------ #
    def deviations(self) -> List[Dict[str, Any]]:
        """Per-row comparison of every ``paper_<metric>`` column against its
        measured partner (``measured_<metric>`` or bare ``<metric>``).

        Rows whose paper value is missing/zero are skipped.  ``rel_err`` is
        (measured - paper) / paper.
        """
        columns = self.columns
        pairs: List[Tuple[str, str, str]] = []  # (metric, measured_col, paper_col)
        for column in columns:
            if not column.startswith("paper_"):
                continue
            metric = column[len("paper_"):]
            for candidate in (f"measured_{metric}", metric):
                if candidate in columns:
                    pairs.append((metric, candidate, column))
                    break
        metric_columns = {col for pair in pairs for col in pair[1:]}
        records: List[Dict[str, Any]] = []
        for row in self.rows:
            label = ", ".join(
                f"{key}={row[key]}" for key in row
                if key not in metric_columns and not key.startswith(("paper_", "measured_"))
            )
            for metric, measured_col, paper_col in pairs:
                paper = row.get(paper_col)
                measured = row.get(measured_col)
                if not isinstance(paper, (int, float)) or not paper:
                    continue
                if not isinstance(measured, (int, float)):
                    continue
                records.append({
                    "label": label,
                    "metric": metric,
                    "measured": float(measured),
                    "paper": float(paper),
                    "ratio": float(measured) / float(paper),
                    "rel_err": (float(measured) - float(paper)) / float(paper),
                })
        return records

    def deviation_table(self, title: Optional[str] = None) -> str:
        records = self.deviations()
        return format_table(
            ["Row", "Metric", "Measured", "Paper", "Measured/Paper", "Rel. error"],
            [[r["label"], r["metric"], r["measured"], r["paper"],
              r["ratio"], r["rel_err"]] for r in records],
            title=(f"{self.experiment} — paper vs measured"
                   if title is None else title),
        )
