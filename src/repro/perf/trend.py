"""Performance trend folding: many ``BENCH_*.json`` reports, one table.

The repo commits one perf baseline per subsystem (``BENCH_kernel.json``,
``BENCH_obs.json``, ``BENCH_fleet.json``, ...), each recorded with the
machine calibration of the box that produced it.  This module folds any
number of them into a single trend view:

* every benchmark value is divided by its report's
  ``calibration_sends_per_sec`` first (the same normalization
  :func:`repro.perf.harness.compare_reports` gates on), so reports
  recorded on different machines line up;
* each benchmark's ratio is computed against its *anchor* — its first
  appearance across the reports in the order given (oldest first), or a
  specific report selected with ``baseline_path``;
* the result is a JSON document (``duet-repro/bench-trend/v1``) plus a
  text table — what ``python -m repro trend`` / ``tools/bench_trend.py``
  print and what CI uploads as the ``BENCH_trend.json`` artifact.

Reports without a calibration (PyPy — see
:data:`repro.perf.harness.IS_PYPY`) fall back to raw values; their points
are marked ``"calibrated": false`` so a cross-interpreter trend is never
silently presented as a clean one.
"""

from __future__ import annotations

import os.path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perf.harness import load_report

#: Bump only when the trend layout changes incompatibly.
TREND_SCHEMA = "duet-repro/bench-trend/v1"


def load_reports(paths: Sequence[str]) -> List[Tuple[str, Dict[str, Any]]]:
    """Load perf reports, keeping the given (oldest-first) order."""
    return [(path, load_report(path)) for path in paths]


def _normalized(bench: Dict[str, Any],
                report: Dict[str, Any]) -> Tuple[float, bool]:
    """Calibration-normalized value (plus whether it *was* calibrated)."""
    value = float(bench.get("value") or 0.0)
    calibration = report.get("calibration_sends_per_sec")
    if calibration:
        return value / calibration, True
    return value, False


def trend_report(reports: Sequence[Tuple[str, Dict[str, Any]]],
                 baseline_path: Optional[str] = None) -> Dict[str, Any]:
    """Fold loaded reports into one trend document.

    ``baseline_path`` anchors every ratio to the named report (matched on
    path or basename); by default each benchmark anchors to its first
    appearance, so a benchmark added later still gets a 1.00x start.
    """
    if not reports:
        raise ValueError("need at least one report to build a trend")
    labels = [os.path.basename(path) for path, _ in reports]
    baseline_index: Optional[int] = None
    if baseline_path is not None:
        base = os.path.basename(baseline_path)
        for index, (path, _) in enumerate(reports):
            if path == baseline_path or labels[index] == base:
                baseline_index = index
                break
        if baseline_index is None:
            known = ", ".join(labels)
            raise ValueError(
                f"baseline report {baseline_path!r} not among the inputs "
                f"({known})")

    benchmarks: Dict[str, Dict[str, Any]] = {}
    for index, (path, report) in enumerate(reports):
        for bench in report.get("benchmarks", ()):
            entry = benchmarks.setdefault(bench["name"], {
                "unit": bench.get("unit", ""),
                "direction": bench.get("direction", "higher"),
                "points": [],
            })
            normalized, calibrated = _normalized(bench, report)
            entry["points"].append({
                "report": labels[index],
                "value": bench.get("value"),
                "normalized": normalized,
                "calibrated": calibrated,
                "mode": report.get("mode"),
            })

    for entry in benchmarks.values():
        points = entry["points"]
        anchor = None
        if baseline_index is not None:
            for point in points:
                if point["report"] == labels[baseline_index]:
                    anchor = point
                    break
        if anchor is None:
            anchor = points[0]
        anchor_value = anchor["normalized"]
        for point in points:
            if anchor_value:
                ratio = point["normalized"] / anchor_value
                if entry["direction"] == "lower" and ratio:
                    ratio = 1.0 / ratio
            else:
                ratio = 0.0
            point["ratio"] = ratio
        entry["anchor"] = anchor["report"]

    return {
        "schema": TREND_SCHEMA,
        "reports": [{
            "path": labels[index],
            "created_at": report.get("created_at"),
            "mode": report.get("mode"),
            "interpreter": report.get("interpreter"),
            "calibration_sends_per_sec":
                report.get("calibration_sends_per_sec"),
        } for index, (_, report) in enumerate(reports)],
        "benchmarks": {name: benchmarks[name]
                       for name in sorted(benchmarks)},
    }


def format_trend(trend: Dict[str, Any]) -> str:
    """The trend as a fixed-width table: one row per benchmark x report.

    ``ratio`` is normalized so > 1 is always an improvement over the
    benchmark's anchor report (direction-aware, like the perf gate).
    """
    header = (f"{'benchmark':<38} {'report':<22} {'value':>14} "
              f"{'ratio':>7}  note")
    lines = [header]
    for name, entry in trend["benchmarks"].items():
        for point in entry["points"]:
            notes = []
            if point["report"] == entry["anchor"]:
                notes.append("anchor")
            if not point["calibrated"]:
                notes.append("uncalibrated")
            if point.get("mode") == "quick":
                notes.append("quick")
            value = point["value"]
            lines.append(
                f"{name:<38} {point['report']:<22} "
                f"{format(value, ',.6g') if value is not None else '-':>14} "
                f"{point['ratio']:>6.2f}x  {' '.join(notes)}".rstrip())
    return "\n".join(lines)
