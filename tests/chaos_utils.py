"""Shared helpers for the chaos/reliability test layer.

Importable from any test module (``from chaos_utils import ...`` — the
tests directory is on ``sys.path`` under pytest's rootdir conftest), so
the serve-, fleet- and chaos-test files agree on what "a chaos run"
and "the chaos columns" mean.
"""

import os

from repro.chaos import ChaosConfig, FaultSchedule, FaultSpec
from repro.fleet import FleetConfig, run_fleet
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.experiments import FLEET_TENANTS
from repro.serve.experiments import run_serve

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Per-tenant columns that only exist once a fault actually fired.
CHAOS_ROW_COLUMNS = ("fault_shed", "replayed", "recovery_time_ns")

#: Fleet-level columns present on every chaos-configured run.
CHAOS_FLEET_COLUMNS = CHAOS_ROW_COLUMNS + (
    "faults_injected", "fabric_faults", "requests_lost", "seu_scrubs",
    "link_faults", "spare_us", "spare_promotions", "dead_nodes")


def aggregate_row(rows):
    return next(row for row in rows if row["tenant"] == "__all__")


def strip_chaos_columns(row):
    """A copy of ``row`` without any chaos-only column."""
    return {key: value for key, value in row.items()
            if key not in CHAOS_FLEET_COLUMNS}


def empty_schedule(seed=1):
    """A chaos config that injects nothing (the bit-identity baseline)."""
    return ChaosConfig(FaultSchedule(seed=seed, specs=()))


def pinned_fault(kind, at_epoch=0, at_node=0, seed=7, **kwargs):
    """A schedule firing exactly one ``kind`` fault at (epoch, node)."""
    return FaultSchedule(seed=seed, specs=(
        FaultSpec(kind=kind, at_epoch=at_epoch, at_node=at_node, **kwargs),))


def run_chaos_serve(chaos, policy="fcfs", **overrides):
    """A small, fast serve deployment with ``chaos`` armed."""
    params = dict(policy=policy, arrival_rate_krps=150.0,
                  duration_us=400.0, num_fabrics=2, chaos=chaos)
    params.update(overrides)
    return run_serve(**params)


def run_chaos_fleet(chaos, nodes=2, spares=1, epochs=3, epoch_us=300.0,
                    rate_krps=200.0, node_executor="serial", seed=2023,
                    **overrides):
    """A small chaos fleet run (autoscaler off so node counts are pinned)."""
    params = dict(
        nodes=nodes,
        placement="affinity",
        epochs=epochs,
        epoch_us=epoch_us,
        autoscaler=AutoscalerConfig(enabled=False),
        node_executor=node_executor,
        chaos=chaos,
        spares=spares,
    )
    params.update(overrides)
    config = FleetConfig(**params)
    return run_fleet(config, FLEET_TENANTS,
                     total_rate_rps=rate_krps * 1000.0, seed=seed)


def assert_conservation(row):
    """The chaos bookkeeping invariant: nothing vanishes, nothing doubles."""
    assert row["completed"] + row["shed"] == row["submitted"], row
    assert row["fault_shed"] <= row["shed"], row
