"""Tests for the unified experiment API (registry, runner, results, CLI)."""

import csv
import io
import json
import os
import subprocess
import sys

import pytest

from repro.analysis import APPLICATION_CONFIGS, run_fig9
from repro.api import (
    ExperimentSpec,
    Runner,
    ResultSet,
    get_experiment,
    list_experiments,
    register_experiment,
)
from repro.workloads.synthetic import measure_bandwidth, measure_latency

PAPER_EXPERIMENTS = ("table1", "table2", "fig9", "fig10", "fig11", "fig12")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _cli_env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_cli_env(), cwd=REPO_ROOT, timeout=300,
    )


# --------------------------------------------------------------------------- #
# Registry discovery
# --------------------------------------------------------------------------- #
def test_registry_discovers_all_paper_experiments():
    names = [spec.name for spec in list_experiments()]
    for name in PAPER_EXPERIMENTS:
        assert name in names
    # Every Fig. 12 application config is its own experiment too.
    for config in APPLICATION_CONFIGS:
        assert f"app/{config.label}" in names


def test_registry_lookup_and_tags():
    assert get_experiment("fig9").name == "fig9"
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig13")
    paper = {spec.name for spec in list_experiments(tag="paper")}
    assert paper == set(PAPER_EXPERIMENTS)
    apps = list_experiments(tag="application")
    assert len(apps) == len(APPLICATION_CONFIGS) + 1  # the 13 apps + fig12


def test_register_experiment_rejects_duplicates():
    spec = get_experiment("fig9")
    with pytest.raises(ValueError, match="already registered"):
        register_experiment(spec)


def test_spec_cells_enumeration_and_overrides():
    spec = get_experiment("fig9")
    cells = spec.cells()
    assert len(cells) == 18  # 6 mechanisms x 3 frequencies
    assert cells[0]["mechanism"] == "shadow_reg"
    assert {"mechanism", "fpga_mhz", "seed"} == set(cells[0])
    # Axis overrides accept scalars and iterables; unknown names fail fast.
    assert len(spec.cells({"fpga_mhz": 100.0})) == 6
    assert len(spec.cells({"mechanism": ("shadow_reg",), "fpga_mhz": (100.0,)})) == 1
    with pytest.raises(ValueError, match="no parameters"):
        spec.cells({"frequency": 100.0})


def test_fixed_override_with_multiple_values_becomes_an_axis():
    spec = get_experiment("fig10")
    cells = spec.cells({"mechanism": "shadow_reg", "fpga_mhz": 100.0,
                        "quad_words": [16, 32]})
    assert len(cells) == 2
    assert [cell["quad_words"] for cell in cells] == [16, 32]
    results = Runner().run("fig10", mechanism="shadow_reg", fpga_mhz=100.0,
                           quad_words=[16, 32])
    assert len(results) == 2
    assert results[0].measured_mbytes_per_s != results[1].measured_mbytes_per_s


# --------------------------------------------------------------------------- #
# Runner: serial, parallel, caching
# --------------------------------------------------------------------------- #
def test_serial_run_matches_direct_measurement():
    results = Runner().run("fig9", mechanism="shadow_reg", fpga_mhz=100.0)
    assert len(results) == 1
    direct = measure_latency("shadow_reg", 100.0)
    assert results[0].measured_roundtrip_ns == direct.roundtrip_ns
    assert results[0].paper_roundtrip_ns == 42


def test_legacy_shim_matches_api_rows():
    api_rows = Runner().run("fig9", fpga_mhz=(100.0,)).to_dicts()
    legacy_rows = run_fig9(frequencies=(100.0,))
    assert api_rows == legacy_rows


def test_parallel_runner_matches_serial_fig12():
    labels = ("tangent", "popcount", "dijkstra")
    serial = Runner().run("fig12", benchmark=labels)
    parallel = Runner(executor="process", workers=4).run("fig12", benchmark=labels)
    assert parallel.rows == serial.rows
    assert parallel.summary == serial.summary
    assert parallel.stats.executor == "process"


def test_runner_reuses_one_pool_across_runs():
    """The process pool is created lazily, survives across run() calls, and
    dies with close() — worker forks are paid once per Runner, not per run."""
    with Runner(executor="process", workers=2) as runner:
        assert runner._pool is None  # lazy: no workers until a run needs them
        first = runner.run("fig9", mechanism=("shadow_reg",), fpga_mhz=(100.0,))
        pool = runner._pool
        assert pool is not None and runner._pool_workers == 2
        second = runner.run("fig9", mechanism=("normal_reg",), fpga_mhz=(100.0,))
        assert runner._pool is pool  # same pool, no re-fork
        assert first.stats.workers == second.stats.workers == 2
    assert runner._pool is None  # context exit tears the workers down


def test_serial_runner_close_is_a_noop():
    runner = Runner()
    runner.run("fig9", mechanism=("shadow_reg",), fpga_mhz=(100.0,))
    runner.close()  # nothing to shut down; must not raise


def test_cache_hits_on_second_run(tmp_path):
    cache_dir = str(tmp_path / "cache")
    runner = Runner(cache_dir=cache_dir)
    overrides = {"mechanism": ("shadow_reg", "normal_reg"), "fpga_mhz": (100.0,)}
    first = runner.run("fig9", **overrides)
    assert first.stats.cache_misses == 2
    assert first.stats.cache_hits == 0
    assert len(os.listdir(os.path.join(cache_dir, "fig9"))) == 2
    second = runner.run("fig9", **overrides)
    assert second.stats.cache_hits == 2
    assert second.stats.cache_misses == 0
    assert second.rows == first.rows
    # use_cache=False bypasses the cache without deleting it.
    bypass = runner.run("fig9", use_cache=False, **overrides)
    assert bypass.stats.cache_hits == 0
    assert bypass.rows == first.rows


def test_cache_key_distinguishes_params(tmp_path):
    runner = Runner(cache_dir=str(tmp_path))
    first = runner.run("fig9", mechanism="shadow_reg", fpga_mhz=100.0)
    other = runner.run("fig9", mechanism="shadow_reg", fpga_mhz=500.0)
    assert first.stats.cache_misses == 1
    assert other.stats.cache_hits == 0  # different frequency, different key
    assert len(os.listdir(tmp_path / "fig9")) == 2


def test_runner_rejects_bad_configuration():
    with pytest.raises(ValueError, match="executor"):
        Runner(executor="threads")
    with pytest.raises(ValueError, match="workers"):
        Runner(workers=0)


def test_ad_hoc_spec_runs_without_registry():
    spec = ExperimentSpec(name="square", cell=_square_cell, grid={"x": (1, 2, 3)})
    results = Runner().run(spec)
    assert [row.y for row in results] == [1, 4, 9]


def _square_cell(x):
    return [{"x": x, "y": x * x}]


# --------------------------------------------------------------------------- #
# Determinism / seed plumbing
# --------------------------------------------------------------------------- #
def test_same_seed_is_bit_identical():
    first = measure_bandwidth("shadow_reg", 100.0, quad_words=16, seed=7)
    second = measure_bandwidth("shadow_reg", 100.0, quad_words=16, seed=7)
    assert first.elapsed_ns == second.elapsed_ns
    assert first.mbytes_per_s == second.mbytes_per_s

    runner_a = Runner(seed=7)
    runner_b = Runner(seed=7)
    overrides = {"mechanism": ("shadow_reg",), "fpga_mhz": (100.0,), "quad_words": 16}
    rows_a = runner_a.run("fig10", **overrides).to_dicts()
    rows_b = runner_b.run("fig10", **overrides).to_dicts()
    assert rows_a == rows_b
    assert rows_a[0]["measured_mbytes_per_s"] > 0


def test_seed_reaches_the_cells():
    results = Runner(seed=11).run("fig10", mechanism="shadow_reg",
                                  fpga_mhz=100.0, quad_words=16)
    direct = measure_bandwidth("shadow_reg", 100.0, quad_words=16, seed=11)
    assert results[0].measured_mbytes_per_s == direct.mbytes_per_s


# --------------------------------------------------------------------------- #
# ResultSet model
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fig9_results():
    return Runner().run("fig9", fpga_mhz=(100.0,))


def test_resultset_json_roundtrip(fig9_results):
    clone = ResultSet.from_json(fig9_results.to_json())
    assert clone == fig9_results
    assert clone.columns == fig9_results.columns


def test_resultset_json_file_roundtrip(fig9_results, tmp_path):
    path = str(tmp_path / "fig9.json")
    fig9_results.to_json(path)
    assert ResultSet.load(path) == fig9_results


def test_resultset_csv_roundtrip(fig9_results, tmp_path):
    text = fig9_results.to_csv(str(tmp_path / "fig9.csv"))
    parsed = list(csv.reader(io.StringIO(text)))
    assert parsed[0] == fig9_results.columns
    assert len(parsed) == len(fig9_results) + 1
    assert parsed[1][0] == fig9_results[0].mechanism
    assert float(parsed[1][2]) == fig9_results[0].measured_roundtrip_ns
    assert (tmp_path / "fig9.csv").read_text() == text


def test_resultset_filter_group_pivot(fig9_results):
    shadow = fig9_results.filter(mechanism="shadow_reg")
    assert len(shadow) == 1 and shadow[0].mechanism == "shadow_reg"
    fast = fig9_results.filter(lambda row: row.measured_roundtrip_ns < 100)
    assert all(row.measured_roundtrip_ns < 100 for row in fast)
    groups = fig9_results.group_by("mechanism")
    assert set(groups) == {row.mechanism for row in fig9_results}
    headers, rows = fig9_results.pivot("mechanism", "fpga_mhz", "measured_roundtrip_ns")
    assert headers == ["mechanism", "100.0"]
    assert len(rows) == 6 and all(len(row) == 2 for row in rows)


def test_resultset_deviations(fig9_results):
    records = fig9_results.deviations()
    assert records, "fig9 carries paper_roundtrip_ns columns"
    for record in records:
        assert record["metric"] == "roundtrip_ns"
        assert record["ratio"] == pytest.approx(record["measured"] / record["paper"])
    assert "paper vs measured" in fig9_results.deviation_table()


def test_resultset_percentile_nearest_rank():
    results = ResultSet("t", [{"x": value} for value in (5, 1, 4, 2, 3)])
    assert results.percentile("x", 0.0) == 1
    assert results.percentile("x", 0.5) == 3
    assert results.percentile("x", 0.99) == 5
    assert results.percentile("x", 1.0) == 5
    # Agrees with the in-sim Histogram convention.
    from repro.sim.stats import Histogram

    histogram = Histogram("x", samples=[5, 1, 4, 2, 3])
    for q in (0.25, 0.5, 0.9, 0.95):
        assert results.percentile("x", q) == histogram.percentile(q)


def test_resultset_percentile_handles_ragged_and_empty_columns():
    results = ResultSet("t", [
        {"x": 10.0, "label": "a"},
        {"label": "b"},                      # column missing entirely
        {"x": None, "label": "c"},           # null value
        {"x": "n/a", "label": "d"},          # non-numeric
        {"x": True, "label": "e"},           # booleans are not measurements
        {"x": 30.0, "label": "f"},
    ])
    assert results.percentile("x", 0.5) == 10.0
    assert results.percentile("x", 1.0) == 30.0
    # No numeric value at all -> None, distinguishable from a measured 0.
    assert results.percentile("label", 0.5) is None
    assert ResultSet("t", []).percentile("x", 0.5) is None
    with pytest.raises(ValueError, match="fraction"):
        results.percentile("x", 1.5)
    with pytest.raises(ValueError, match="fraction"):
        results.percentile("x", -0.1)


def test_resultset_percentile_on_serve_rows():
    """The helper exists so serve reports don't hand-roll p99 math."""
    from repro.serve.experiments import serve_policy_cell

    rows = serve_policy_cell("affinity", 250.0, "duo", duration_us=1_000.0)
    results = ResultSet("serve_policy", rows)
    p99 = results.percentile("p99_latency_us", 0.99)
    assert p99 is not None and p99 > 0
    assert results.percentile("p99_latency_us", 0.0) <= p99


def test_resultset_to_table_uses_format_table(fig9_results):
    text = fig9_results.to_table(columns=["mechanism", "measured_roundtrip_ns"],
                                 headers=["Mechanism", "ns"], title="Latency")
    lines = text.splitlines()
    assert lines[0] == "Latency"
    assert "shadow_reg" in text


# --------------------------------------------------------------------------- #
# CLI (subprocess smoke tests)
# --------------------------------------------------------------------------- #
def test_cli_list_shows_all_paper_experiments():
    proc = _cli("list")
    assert proc.returncode == 0, proc.stderr
    for name in PAPER_EXPERIMENTS:
        assert name in proc.stdout
    proc_json = _cli("list", "--json")
    names = [entry["name"] for entry in json.loads(proc_json.stdout)]
    assert set(PAPER_EXPERIMENTS) <= set(names)


def test_cli_run_fig9_json_matches_legacy():
    proc = _cli("run", "fig9", "--json")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["experiment"] == "fig9"
    assert payload["rows"] == run_fig9()


def test_cli_run_unknown_experiment_fails_cleanly():
    proc = _cli("run", "fig13")
    assert proc.returncode == 2
    assert "unknown experiment" in proc.stderr


def test_cli_workers_alone_implies_process_executor():
    from repro.api.cli import _make_runner, build_parser

    parser = build_parser()
    implied = _make_runner(parser.parse_args(
        ["run", "fig9", "--workers", "2"]))
    assert implied.executor == "process" and implied.workers == 2
    explicit = _make_runner(parser.parse_args(
        ["run", "fig9", "--executor", "serial"]))
    assert explicit.executor == "serial"
    # End to end: the implied process run produces the serial rows.
    serial = _cli("run", "fig9", "--json",
                  "-p", "mechanism=shadow_reg", "-p", "fpga_mhz=100")
    proc = _cli("run", "fig9", "--json", "--workers", "2",
                "-p", "mechanism=shadow_reg", "-p", "fpga_mhz=100")
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout)["rows"] == json.loads(serial.stdout)["rows"]
