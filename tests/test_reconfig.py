"""Tests for ``repro.reconfig``: the region allocator property suite, the
provisioning plan, region-granular bitstreams, scheduler co-location edge
cases, the ``regions=1`` bit-identity golden, and the acceptance pin that
4-region affinity serving beats whole-fabric on reconfig overhead and p99."""

import json
import os
import subprocess
import sys
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.registry import get_experiment
from repro.api.runner import Runner
from repro.core.control_hub import ControlHubConfig, program_cycles
from repro.fpga.bitstream import Bitstream, BitstreamError
from repro.fpga.fabric import FabricInstance, FabricSpec
from repro.fpga.synthesis import SynthesisModel
from repro.reconfig import (
    PlacementError,
    RegionAllocator,
    RegionPlan,
    minimal_region_capacity,
    pack_designs,
    sort_key,
)
from repro.reconfig.experiments import reconfig_cell, reconfig_summary
from repro.serve.catalog import materialize
from repro.serve.experiments import run_serve, serve_policy_cell
from repro.serve.scheduler import FabricScheduler, ServeConfig
from repro.serve.slo import SloMonitor
from repro.serve.traffic import Request
from repro.sim import Delay, Simulator

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# --------------------------------------------------------------------------- #
# program_cycles: the one shared transfer-cycle formula (serve + fleet)
# --------------------------------------------------------------------------- #
def test_program_cycles_values_and_errors():
    assert program_cycles(0, 64) == 1          # floor: even nothing costs a cycle
    assert program_cycles(1, 64) == 1
    assert program_cycles(64, 64) == 1
    assert program_cycles(65, 64) == 2          # ceil, not floor
    assert program_cycles(1024, 64) == 16
    with pytest.raises(ValueError, match="non-negative"):
        program_cycles(-1, 64)
    with pytest.raises(ValueError, match="positive"):
        program_cycles(64, 0)


def test_program_cycles_matches_both_legacy_formulas_for_catalog_images():
    """Tile-aligned images (tiles x 1024 bits vs 64 bits/cycle) divide
    exactly, so unifying serve's floor and fleet's ceil on one helper is
    bit-identical for every image either layer ever programs."""
    bits_per_cycle = ControlHubConfig().programming_bits_per_cycle
    for name in ("popcount", "sort64", "tangent", "dijkstra"):
        bits = materialize(name).bitstream.config_bits
        assert bits % bits_per_cycle == 0
        assert program_cycles(bits, bits_per_cycle) == max(1, bits // bits_per_cycle)
        assert program_cycles(bits, bits_per_cycle) == -(-bits // bits_per_cycle)


def test_migration_stall_uses_the_shared_helper():
    from repro.fleet.node import migration_stall_ns

    sim = Simulator()
    scheduler = FabricScheduler(sim, ServeConfig(accelerators=("popcount",)))
    bits = scheduler.accelerators["popcount"].bitstream.config_bits
    cycles = program_cycles(
        bits, scheduler.config.control_hub.programming_bits_per_cycle)
    expected = cycles * 1000.0 / 1000.0 + 25_000.0
    assert migration_stall_ns(scheduler, "popcount", 1000.0) == expected


# --------------------------------------------------------------------------- #
# The fabric region grid
# --------------------------------------------------------------------------- #
def test_region_columns_partition_the_fabric():
    fabric = FabricInstance(FabricSpec(), columns=10, rows=7)
    assert fabric.region_columns(3) == (4, 3, 3)
    assert sum(fabric.region_columns(3)) == fabric.columns
    assert fabric.region_tile_capacities(3) == (28, 21, 21)
    assert sum(fabric.region_config_bits(3)) == fabric.config_bits
    assert fabric.region_columns(1) == (10,)
    with pytest.raises(ValueError, match="at least one region"):
        fabric.region_columns(0)
    with pytest.raises(ValueError, match="cannot split"):
        fabric.region_columns(11)


# --------------------------------------------------------------------------- #
# Region-granular bitstreams
# --------------------------------------------------------------------------- #
def _regioned_image(regions=4, columns=8, rows=4):
    design = materialize("popcount").spec.design
    fabric = FabricInstance(FabricSpec(), columns=columns, rows=rows)
    return Bitstream.generate(design, fabric, regions=regions), fabric


def test_generate_with_regions_carries_the_grid():
    image, fabric = _regioned_image()
    assert image.regions == 4
    assert image.region_bits == fabric.region_config_bits(4)
    assert sum(image.region_bits) == image.config_bits
    assert image.verify()
    # Region slices tile the payload exactly.
    assert b"".join(image.region_slice(i) for i in range(4)) == image.data
    # A monolithic image has no grid.
    mono = Bitstream.generate(materialize("popcount").spec.design, fabric)
    assert mono.regions == 1 and mono.region_bits is None
    with pytest.raises(BitstreamError, match="no region grid"):
        mono.for_regions((0,))


def test_for_regions_slices_bits_and_checksums():
    image, fabric = _regioned_image()
    partial = image.for_regions((1, 2))
    assert partial.config_bits == image.region_bits[1] + image.region_bits[2]
    assert partial.data == image.region_slice(1) + image.region_slice(2)
    assert partial.region_crcs == (image.region_crcs[1], image.region_crcs[2])
    assert partial.verify()
    assert partial.meta["regions"] == (1, 2)
    with pytest.raises(BitstreamError, match="at least one region"):
        image.for_regions(())
    with pytest.raises(BitstreamError, match="duplicate"):
        image.for_regions((1, 1))
    with pytest.raises(BitstreamError, match="out of range"):
        image.for_regions((4,))


def test_corruption_is_caught_per_region_and_stays_latent_elsewhere():
    """An SEU inside a transferred span must fail verify even though the
    partial's whole-payload CRC was recomputed over the corrupt bytes; an
    SEU confined to untransferred regions must stay latent."""
    image, _ = _regioned_image()
    region1_offset = image.region_bits[0] // 8
    corrupt = image.corrupted(offset=region1_offset, flip_mask=0xFF)
    assert corrupt.region_bits == image.region_bits
    assert not corrupt.verify()
    assert not corrupt.for_regions((0, 1)).verify()   # span covers the flip
    assert corrupt.for_regions((2, 3)).verify()       # flip not transferred
    assert corrupt.for_regions((0,)).verify()


def test_region_field_validation():
    with pytest.raises(BitstreamError, match="together"):
        Bitstream("x", b"ab", zlib.crc32(b"ab"), 16, region_bits=(16,))
    with pytest.raises(BitstreamError, match="sum to"):
        Bitstream("x", b"ab", zlib.crc32(b"ab"), 16,
                  region_bits=(8, 16), region_crcs=(0, 0))
    with pytest.raises(BitstreamError, match="multiples of 8"):
        Bitstream("x", b"ab", zlib.crc32(b"ab"), 16,
                  region_bits=(12, 4), region_crcs=(0, 0))


# --------------------------------------------------------------------------- #
# RegionAllocator property suite (hypothesis)
# --------------------------------------------------------------------------- #
_NAMES = tuple(f"d{i}" for i in range(6))


@given(
    regions=st.integers(min_value=2, max_value=6),
    capacity=st.integers(min_value=1, max_value=32),
    ops=st.lists(
        st.tuples(st.sampled_from(("place", "evict", "pin", "unpin", "touch")),
                  st.integers(min_value=0, max_value=5),
                  st.integers(min_value=1, max_value=96)),
        max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_allocator_invariants_under_arbitrary_sequences(regions, capacity, ops):
    """No overlap, contiguous spans, free-list conservation and
    placed-capacity >= requested tiles, under any place/evict/pin mix."""
    allocator = RegionAllocator([capacity] * regions)
    for op, design, tiles in ops:
        name = _NAMES[design]
        try:
            if op == "place":
                placement = allocator.place(name, tiles)
                assert placement.count * capacity >= tiles
                assert name not in placement.evicted
            elif op == "evict":
                allocator.evict(name)
            elif op == "pin":
                allocator.pin(name)
            elif op == "unpin":
                allocator.unpin(name)
            else:
                allocator.touch(name)
        except PlacementError:
            pass
        occupants = allocator.occupants
        occupied = sum(1 for occupant in occupants if occupant is not None)
        assert allocator.free_regions() + occupied == regions  # conservation
        for resident in allocator.residents():
            span = allocator.lookup(resident)
            assert span == tuple(range(span[0], span[0] + len(span)))
        assert 0.0 <= allocator.fragmentation() <= 1.0


@given(
    tiles=st.dictionaries(st.sampled_from(_NAMES),
                          st.integers(min_value=1, max_value=200),
                          min_size=1, max_size=6),
    regions=st.integers(min_value=2, max_value=6),
    capacity=st.integers(min_value=8, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_pack_designs_is_deterministic_and_non_overlapping(
        tiles, regions, capacity):
    capacities = [capacity] * regions
    packed = pack_designs(tiles, capacities)
    # Insertion order of the input dict must not matter (FFD sorts with the
    # CRC-32 tiebreak, never hash order).
    reordered = dict(sorted(tiles.items(), reverse=True))
    assert pack_designs(reordered, capacities) == packed
    claimed = [index for placement in packed.values()
               for index in placement.regions]
    assert len(claimed) == len(set(claimed))            # no overlap
    for name, placement in packed.items():
        assert placement.count * capacity >= tiles[name]  # area covered


def test_sort_key_orders_big_first_with_stable_tiebreak():
    designs = {"aa": 10, "bb": 10, "cc": 40}
    ordering = sorted(designs, key=lambda name: sort_key(name, designs[name]))
    assert ordering[0] == "cc"
    tie = sorted(["aa", "bb"], key=lambda name: zlib.crc32(name.encode()))
    assert ordering[1:] == tie


def test_packing_is_pythonhashseed_independent():
    """Provisioning + packing must not consult ``hash()`` anywhere:
    interpreters with different string-hash seeds agree byte for byte."""
    script = (
        "import json, sys\n"
        "from repro.reconfig import RegionPlan, pack_designs\n"
        "from repro.serve.catalog import materialize\n"
        "accs = {n: materialize(n)\n"
        "        for n in ('popcount', 'sort64', 'tangent', 'dijkstra')}\n"
        "plan = RegionPlan.build(accs, 4, fabric_scale=0.6)\n"
        "packed = pack_designs(plan.tiles, plan.capacities)\n"
        "json.dump({'capacity': plan.region_capacity,\n"
        "           'grid': [plan.fabric.columns, plan.fabric.rows],\n"
        "           'placements': {name: [p.start, p.count]\n"
        "                          for name, p in sorted(packed.items())}},\n"
        "          sys.stdout, sort_keys=True)\n"
    )
    outputs = []
    for hashseed in ("0", "1", "31337"):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT, timeout=300)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2]


# --------------------------------------------------------------------------- #
# RegionPlan provisioning
# --------------------------------------------------------------------------- #
def test_minimal_region_capacity_is_minimal_and_feasible():
    tiles = {"a": 289, "b": 400}
    capacity = minimal_region_capacity(tiles, 4)
    spans = sum(-(-count // capacity) for count in tiles.values())
    assert spans <= 4
    if capacity > 1:
        worse = sum(-(-count // (capacity - 1)) for count in tiles.values())
        assert worse > 4                      # one tile smaller no longer fits
    # Infeasible (more designs than regions): fall back to fitting the
    # single biggest design across the whole grid.
    assert minimal_region_capacity({"a": 10, "b": 20, "c": 30}, 2) == 15
    with pytest.raises(PlacementError, match="zero designs"):
        minimal_region_capacity({}, 4)


def test_duo_plan_co_locates_both_designs():
    """The tentpole sizing result: at 4 regions the duo designs fill the
    grid exactly, so steady-state serving needs no reconfiguration at all."""
    accelerators = {name: materialize(name) for name in ("popcount", "sort64")}
    plan = RegionPlan.build(accelerators, 4)
    assert plan.span_needed("popcount") + plan.span_needed("sort64") == 4
    assert len(set(plan.capacities)) == 1
    for name, acc in accelerators.items():
        image = plan.images[name]
        assert image.regions == 4 and image.verify()
        assert plan.span_needed(name) * plan.region_capacity >= acc.tiles_needed
    assert plan.fabric.config_bits == sum(plan.images["popcount"].region_bits)


def test_plan_rejects_degenerate_inputs():
    accelerators = {"popcount": materialize("popcount")}
    with pytest.raises(PlacementError, match="whole-fabric"):
        RegionPlan.build(accelerators, 1)
    with pytest.raises(PlacementError, match="positive"):
        RegionPlan.build(accelerators, 4, fabric_scale=0.0)


def test_underprovisioned_plan_still_fits_the_widest_design():
    accelerators = {name: materialize(name)
                    for name in ("popcount", "sort64", "tangent", "dijkstra")}
    plan = RegionPlan.build(accelerators, 4, fabric_scale=0.25)
    for name in accelerators:
        assert plan.span_needed(name) <= plan.regions


def test_synthesis_tiles_needed_matches_fabric():
    result = SynthesisModel().implement(materialize("popcount").spec.design)
    assert result.tiles_needed == result.fabric.total_tiles
    assert materialize("popcount").tiles_needed == result.tiles_needed


# --------------------------------------------------------------------------- #
# Allocator edge cases the scheduler leans on
# --------------------------------------------------------------------------- #
def test_all_pinned_grid_refuses_placement_instead_of_deadlocking():
    allocator = RegionAllocator([10, 10])
    allocator.place("a", 10)
    allocator.place("b", 10)
    allocator.pin("a")
    allocator.pin("b")
    assert not allocator.can_place(10, "c")
    with pytest.raises(PlacementError, match="pinned"):
        allocator.place("c", 10)
    with pytest.raises(PlacementError, match="pinned"):
        allocator.evict("a")
    allocator.unpin("a")
    assert allocator.can_place(10, "c")
    placement = allocator.place("c", 10)
    assert placement.evicted == ("a",)


def test_fragmented_grid_fits_total_but_not_contiguously():
    """Two free regions scattered around pinned residents cannot host a
    2-region design; freeing one unpins a contiguous run."""
    allocator = RegionAllocator([10] * 4)
    for name in ("a", "b", "c", "d"):
        allocator.place(name, 10)
    allocator.evict("a")
    allocator.evict("c")
    allocator.pin("b")
    allocator.pin("d")
    assert allocator.free_regions() == 2          # total area would fit...
    assert allocator.fragmentation() == 0.5       # ...but split 1 + 1
    assert not allocator.can_place(20, "e")       # needs a contiguous pair
    with pytest.raises(PlacementError):
        allocator.place("e", 20)
    allocator.unpin("d")
    assert allocator.can_place(20, "e")
    placement = allocator.place("e", 20)
    assert placement.evicted == ("d",)
    assert placement.regions == (2, 3)


def test_lru_eviction_order_follows_touches():
    allocator = RegionAllocator([10] * 2)
    allocator.place("a", 10)
    allocator.place("b", 10)
    allocator.touch("a")                           # b is now least recent
    assert allocator.place("c", 10).evicted == ("b",)


def test_unpin_tolerates_scrubbed_designs():
    allocator = RegionAllocator([10])
    allocator.unpin("ghost")                      # no-op, no raise
    allocator.place("a", 10)
    allocator.pin("a")
    allocator.pin("a")
    allocator.unpin("a")
    assert allocator.is_pinned("a")
    allocator.unpin("a")
    assert not allocator.is_pinned("a")


# --------------------------------------------------------------------------- #
# Scheduler co-location (driven deployments)
# --------------------------------------------------------------------------- #
def _drive_regional(submissions, accelerators, regions, scale=1.0,
                    policy="fcfs", queue_capacity=None):
    """Run a region-mode deployment over timed submissions to drain."""
    sim = Simulator()
    config = ServeConfig(policy=policy, accelerators=accelerators,
                         regions=regions, region_fabric_scale=scale,
                         queue_capacity=queue_capacity)
    scheduler = FabricScheduler(sim, config, monitor=SloMonitor(sim))

    def feeder():
        now = 0.0
        for at_ns, request in submissions:
            if at_ns > now:
                yield Delay(at_ns - now)
                now = at_ns
            scheduler.submit(request)
        scheduler.close()

    sim.process(feeder(), name="test.feeder")
    sim.run(max_events=2_000_000)
    return scheduler, sim


def test_co_located_designs_serve_concurrently():
    """Two designs on disjoint spans of one fabric overlap in time —
    the throughput payoff whole-fabric serving can never reach."""
    first = Request(request_id=1, tenant="t1", accelerator="popcount", size=2000)
    second = Request(request_id=2, tenant="t2", accelerator="sort64", size=2000)
    scheduler, _ = _drive_regional(
        [(0.0, first), (0.0, second)], ("popcount", "sort64"), regions=4)
    assert first.finish_ns > 0 and second.finish_ns > 0
    assert first.start_ns < second.finish_ns
    assert second.start_ns < first.finish_ns      # genuinely concurrent
    fabric = scheduler.fabrics[0]
    assert fabric.region_programmings == 2
    assert fabric.regions_programmed == 4
    assert fabric.allocator.evictions == 0


def test_hot_swap_under_traffic_then_evict_when_idle():
    """A span hot-swaps in while another span's request is in flight; a
    wider design then waits for the pins to release and evicts both."""
    long_run = Request(request_id=1, tenant="t1", accelerator="popcount", size=4000)
    swap_in = Request(request_id=2, tenant="t2", accelerator="tangent", size=4000)
    wide = Request(request_id=3, tenant="t3", accelerator="sort64", size=100)
    scheduler, sim = _drive_regional(
        [(0.0, long_run), (1_000.0, swap_in), (2_000.0, wide)],
        ("popcount", "sort64", "tangent"), regions=4, scale=0.5)
    assert long_run.finish_ns > 0 and swap_in.finish_ns > 0 and wide.finish_ns > 0
    # The tangent span programmed and started while popcount was in flight.
    assert swap_in.start_ns < long_run.finish_ns
    # sort64 spans 3 regions on this under-provisioned grid: it could not
    # start until the pinned spans drained, then evicted to make room.
    fabric = scheduler.fabrics[0]
    assert wide.start_ns >= min(long_run.finish_ns, swap_in.finish_ns)
    assert fabric.allocator.evictions >= 1
    assert fabric.region_programmings == 3
    assert not scheduler.pending                   # drained, no deadlock


def test_fully_pinned_fabric_sheds_under_bounded_queue():
    """Every design spans the whole grid: while one is in flight nothing
    else can start, the bounded queue fills, and admission sheds — the
    deployment degrades instead of deadlocking."""
    running = Request(request_id=1, tenant="t1", accelerator="popcount", size=4000)
    queued = Request(request_id=2, tenant="t2", accelerator="sort64", size=100)
    dropped = Request(request_id=3, tenant="t3", accelerator="tangent", size=100)
    scheduler, _ = _drive_regional(
        [(0.0, running), (1_000.0, queued), (2_000.0, dropped)],
        ("popcount", "sort64", "tangent"), regions=2, scale=0.1,
        queue_capacity=1)
    plan = scheduler.region_plan
    assert all(plan.span_needed(name) == 2
               for name in ("popcount", "sort64", "tangent"))
    assert running.finish_ns > 0
    assert queued.finish_ns > 0                   # waited, then evicted in
    assert dropped.shed                           # queue full while pinned
    assert scheduler.fabrics[0].allocator.evictions >= 1


def test_seu_in_a_programmed_span_scrubs_and_retries():
    """Chaos interop: a corrupt byte inside the span being transferred
    trips the per-region integrity check; recovery scrubs the image,
    frees the half-programmed span and replays the request."""
    sim = Simulator()
    scheduler = FabricScheduler(sim, ServeConfig(
        policy="fcfs", accelerators=("popcount", "sort64"), regions=4))
    scheduler.corrupt_image("popcount", offset=0, flip_mask=0xFF)
    request = Request(request_id=1, tenant="t1", accelerator="popcount", size=10)

    def feeder():
        scheduler.submit(request)
        scheduler.close()
        yield from ()

    sim.process(feeder(), name="test.feeder")
    sim.run(max_events=500_000)
    assert scheduler.fault_stats["seu_scrubs"] == 1
    assert scheduler.fault_stats["replayed"] == 1
    assert request.finish_ns > 0                  # retried on pristine image
    assert "popcount" not in scheduler.images     # override scrubbed


def test_seu_outside_the_programmed_span_stays_latent():
    """A flip in a region the partial transfer never touches cannot trip
    the check — realistic SEU behavior the whole-fabric path can't model."""
    sim = Simulator()
    scheduler = FabricScheduler(sim, ServeConfig(
        policy="fcfs", accelerators=("popcount", "sort64"), regions=4))
    # popcount places first at regions (0, 1); sort64 lands on (2, 3), so a
    # flip in byte 0 of sort64's image is outside its transferred span.
    scheduler.corrupt_image("sort64", offset=0, flip_mask=0xFF)
    first = Request(request_id=1, tenant="t1", accelerator="popcount", size=10)
    second = Request(request_id=2, tenant="t2", accelerator="sort64", size=10)

    def feeder():
        scheduler.submit(first)
        yield Delay(1.0)
        scheduler.submit(second)
        scheduler.close()

    sim.process(feeder(), name="test.feeder")
    sim.run(max_events=500_000)
    assert scheduler.fabrics[0].allocator.lookup("sort64") == (2, 3)
    assert scheduler.fault_stats["seu_scrubs"] == 0
    assert first.finish_ns > 0 and second.finish_ns > 0
    assert "sort64" in scheduler.images           # still latent


def test_heal_resets_the_region_grid():
    sim = Simulator()
    scheduler = FabricScheduler(sim, ServeConfig(
        policy="fcfs", accelerators=("popcount", "sort64"), regions=4))
    request = Request(request_id=1, tenant="t1", accelerator="popcount", size=10)

    def feeder():
        scheduler.submit(request)
        scheduler.close()
        yield from ()

    sim.process(feeder(), name="test.feeder")
    sim.run(max_events=500_000)
    fabric = scheduler.fabrics[0]
    assert fabric.allocator.residents() == ("popcount",)
    scheduler.fail_fabric(0)
    scheduler.heal_fabric(0)
    # Configuration memory did not survive: the grid is blank again.
    assert fabric.allocator.residents() == ()


# --------------------------------------------------------------------------- #
# Default-off contract: regions=1 bit-identical to the pre-region goldens
# --------------------------------------------------------------------------- #
#: Columns allowed to exist beyond the pre-region golden's schema.  The
#: repro.obs PR extended every tenant row with deeper-tail percentiles —
#: values on the golden's own columns must still match byte for byte.
_POST_GOLDEN_COLUMNS = {"p999_latency_us", "max_latency_us"}


def _assert_rows_match_golden(rows, golden_rows, key):
    """Projection equality: every golden column present with the exact
    golden value, and any extra columns drawn only from the sanctioned
    post-golden set (so new columns are an explicit decision, not drift)."""
    assert len(rows) == len(golden_rows), f"{key}: row count drifted"
    for row, golden_row in zip(rows, golden_rows):
        for column, value in golden_row.items():
            assert row[column] == value, f"{key}: {column} drifted"
        extra = set(row) - set(golden_row)
        assert extra <= _POST_GOLDEN_COLUMNS, f"{key}: unexpected {extra}"


def test_regions_1_serve_and_chaos_match_pre_region_goldens():
    """The golden was recorded at the commit *before* region support; with
    regions merely compiled in (default 1), serve_policy and chaos cells
    must reproduce every golden column byte for byte."""
    from repro.chaos.experiments import chaos_cell

    with open(os.path.join(DATA_DIR, "reconfig_golden.json")) as fh:
        golden = json.load(fh)
    for policy in ("fcfs", "affinity"):
        for mix in ("duo", "quad"):
            key = f"serve_policy/{policy}/{mix}@250"
            rows = json.loads(json.dumps(serve_policy_cell(policy, 250.0, mix)))
            _assert_rows_match_golden(rows, golden[key], key)
    for fault_rate, policy, recovery in ((0.0, "fcfs", False),
                                         (1.0, "affinity", True)):
        key = f"chaos/{fault_rate:g}/{policy}/{recovery}"
        rows = json.loads(json.dumps(chaos_cell(
            fault_rate, policy, recovery, nodes=2, spares=1, epochs=3,
            epoch_us=300.0, rate_krps=200.0)))
        _assert_rows_match_golden(rows, golden[key], key)


def test_region_columns_only_exist_when_regions_above_one():
    plain = run_serve("fcfs", duration_us=300.0)
    assert all("regions" not in row for row in plain["rows"])
    regional = run_serve("fcfs", duration_us=300.0, regions=2)
    for row in regional["rows"]:
        assert row["regions"] == 2
        assert "region_programmings" in row
        assert "fragmentation_mean" in row


def test_run_serve_rejects_power_with_regions():
    with pytest.raises(ValueError, match="power accounting"):
        run_serve("fcfs", duration_us=100.0, regions=2, power=True)
    with pytest.raises(ValueError, match="regions"):
        ServeConfig(accelerators=("popcount",), regions=0)
    with pytest.raises(ValueError, match="region_fabric_scale"):
        ServeConfig(accelerators=("popcount",), region_fabric_scale=-1.0)


# --------------------------------------------------------------------------- #
# The reconfig experiment + acceptance pin
# --------------------------------------------------------------------------- #
def test_reconfig_experiment_registered_with_expected_grid():
    spec = get_experiment("reconfig")
    assert spec.grid["regions"] == (1, 2, 4)
    assert set(spec.grid["policy"]) == {"fcfs", "affinity"}
    assert set(spec.grid["tenant_mix"]) == {"duo", "quad"}
    assert spec.summarize is reconfig_summary


def test_reconfig_cell_rows_are_rectangular_and_deterministic():
    kwargs = dict(regions=2, policy="fcfs", tenant_mix="duo",
                  duration_us=500.0)
    rows = reconfig_cell(**kwargs)
    assert rows == reconfig_cell(**kwargs)
    baseline = reconfig_cell(regions=1, policy="fcfs", tenant_mix="duo",
                             duration_us=500.0)
    # Uniform columns across the sweep: the regions=1 rows carry zeroed
    # region columns so the result table stays rectangular.
    assert set(rows[0]) == set(baseline[0])
    assert baseline[0]["regions"] == 1
    assert baseline[0]["region_programmings"] == 0


def test_acceptance_pin_4_region_affinity_beats_whole_fabric():
    """The PR's acceptance: duo mix, affinity, 4 regions at 250 krps —
    reconfig-overhead fraction <= 0.5x whole-fabric and p99 <= 0.8x."""
    whole = next(row for row in reconfig_cell(
        regions=1, policy="affinity", tenant_mix="duo")
        if row["tenant"] == "__all__")
    regional = next(row for row in reconfig_cell(
        regions=4, policy="affinity", tenant_mix="duo")
        if row["tenant"] == "__all__")
    assert whole["reconfig_overhead"] > 0
    assert regional["reconfig_overhead"] <= 0.5 * whole["reconfig_overhead"]
    assert regional["p99_latency_us"] <= 0.8 * whole["p99_latency_us"]
    assert regional["goodput_krps"] >= whole["goodput_krps"]
    summary = reconfig_summary(
        reconfig_cell(regions=1, policy="affinity", tenant_mix="duo")
        + reconfig_cell(regions=4, policy="affinity", tenant_mix="duo"))
    assert summary["overhead_vs_whole[affinity/duo@4r/s1]"] <= 0.5
    assert summary["p99_vs_whole[affinity/duo@4r/s1]"] <= 0.8


def test_reconfig_runner_serial_matches_process_executor():
    overrides = dict(regions=(1, 4), policy=("affinity",),
                     tenant_mix=("duo",), fabric_scale=(1.0,))
    serial = Runner().run("reconfig", **overrides)
    parallel = Runner(executor="process", workers=2).run("reconfig", **overrides)
    assert serial.rows == parallel.rows
    assert serial.summary == parallel.summary
    assert parallel.stats.executor == "process"


def test_reconfig_bench_is_in_suite_and_gated():
    from repro.perf import SUITE
    from repro.perf.harness import DEFAULT_GATES
    from repro.perf.micro import reconfig_request_throughput

    names = [spec.name for spec in SUITE]
    assert "reconfig_requests_per_sec" in names
    assert "reconfig_requests_per_sec" in DEFAULT_GATES
    assert reconfig_request_throughput(duration_us=300.0) > 0
