"""Declarative experiment specifications.

An :class:`ExperimentSpec` separates *what* an experiment measures from *how*
it is executed (see :mod:`repro.api.runner`) and *how* its results are
reported (see :mod:`repro.api.results`):

* ``cell`` is a plain function ``cell(**params) -> list[dict]`` producing the
  rows for one point of the parameter space.  Cells must be module-level
  functions so the process-pool executor can pickle them.
* ``grid`` maps axis names to the swept values; the cartesian product of the
  axes defines the experiment's cells, in deterministic order (first axis
  slowest-varying).
* ``fixed`` holds non-swept parameters (problem sizes, seeds); callers can
  override both axes and fixed values per run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: A cell returns the measured rows for one parameter combination.
Rows = List[Dict[str, Any]]
CellFn = Callable[..., Rows]
SummarizeFn = Callable[[Rows], Dict[str, Any]]


def _as_axis(value: Any) -> Tuple[Any, ...]:
    """Normalize an axis override: scalars become single-value axes."""
    if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """One named, parameterized experiment.

    ``summarize`` optionally derives aggregate metrics (e.g. geometric means)
    from the full row list once every cell has run.
    """

    name: str
    cell: CellFn
    title: str = ""
    description: str = ""
    grid: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    summarize: Optional[SummarizeFn] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an experiment needs a non-empty name")
        if not callable(self.cell):
            raise TypeError(f"cell of experiment {self.name!r} is not callable")
        object.__setattr__(
            self, "grid", {axis: _as_axis(values) for axis, values in self.grid.items()}
        )
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "tags", tuple(self.tags))
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters {sorted(overlap)} are both axes and fixed")

    # ------------------------------------------------------------------ #
    # Parameter-space enumeration
    # ------------------------------------------------------------------ #
    @property
    def parameters(self) -> Tuple[str, ...]:
        """Every parameter the experiment accepts (axes first)."""
        return tuple(self.grid) + tuple(self.fixed)

    def cells(self, overrides: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        """Enumerate the parameter combinations for one run.

        ``overrides`` may replace an axis with new values (any iterable, or a
        scalar for a single point) or change a fixed parameter; a fixed
        parameter overridden with multiple values is promoted to a swept
        axis.  Unknown names raise ``ValueError`` so typos fail fast.
        """
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(self.parameters)
        if unknown:
            raise ValueError(
                f"experiment {self.name!r} has no parameters {sorted(unknown)}; "
                f"valid parameters: {list(self.parameters)}"
            )
        axes = {
            axis: _as_axis(overrides[axis]) if axis in overrides else values
            for axis, values in self.grid.items()
        }
        fixed: Dict[str, Any] = {}
        for key, default in self.fixed.items():
            if key in overrides and isinstance(overrides[key], (list, tuple, set, range)):
                axes[key] = _as_axis(tuple(overrides[key]))
            else:
                fixed[key] = overrides.get(key, default)
        cells: List[Dict[str, Any]] = []
        for combo in itertools.product(*axes.values()):
            params = dict(zip(axes.keys(), combo))
            params.update(fixed)
            cells.append(params)
        return cells

    def num_cells(self, overrides: Optional[Mapping[str, Any]] = None) -> int:
        return len(self.cells(overrides))

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly summary (used by ``python -m repro list --json``)."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "grid": {axis: list(values) for axis, values in self.grid.items()},
            "fixed": dict(self.fixed),
            "cells": self.num_cells(),
            "tags": list(self.tags),
        }
