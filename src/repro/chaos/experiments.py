"""The ``chaos`` experiment: failover under traffic, quantified.

One cell = one fleet run (4 nodes + a hot spare by default) that loses
node 0 to a pinned whole-node fault in epoch 1 while a rate-scaled
background of SEUs and transient link faults plays over every node.  The
sweep crosses background fault rate x scheduling policy x recovery on/off;
what comes out is the cost of reliability:

* with recovery, the control plane promotes the spare, re-places the dead
  node's tenants through the router's real migration path (they pay the
  re-program + state-transfer blackout) and replays the lost requests —
  the pinned acceptance is that cluster goodput is back to >= 0.8x its
  pre-fault level within two epochs of the kill;
* without recovery, the dead node keeps its tenants and sheds everything —
  the ablation the summary's ``recovery_goodput_gain`` compares against.

Cells are module-level and picklable; chaos fleet runs stay serial ≡
process bit-identical because every fault draw resolves in the parent
(see :mod:`repro.chaos.schedule`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.chaos.inject import ChaosConfig
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.cluster import FleetConfig, epoch_goodput, run_fleet
from repro.fleet.experiments import FLEET_TENANTS

DEFAULT_SEED = 2023

#: The epoch the pinned whole-node kill lands in (node 0).
KILL_EPOCH = 1

#: Recovery budget of the acceptance pin: goodput must be back within this
#: many epochs of the kill...
RECOVERY_EPOCHS = 2
#: ...to at least this fraction of the pre-fault level.
RECOVERY_FLOOR = 0.8


def build_schedule(fault_rate: float, seed: int = DEFAULT_SEED,
                   kill_node: int = 0) -> FaultSchedule:
    """The canonical chaos mix: one pinned node kill + rate-scaled noise.

    ``fault_rate`` is the expected SEUs per (node, epoch); transient link
    faults run at half that and self-repair.  ``fault_rate=0`` keeps only
    the pinned kill — the cleanest failover measurement.
    """
    if fault_rate < 0:
        raise ValueError(f"fault_rate cannot be negative, got {fault_rate}")
    specs: List[FaultSpec] = [
        FaultSpec(kind="fabric", scope="node", at_epoch=KILL_EPOCH,
                  at_node=kill_node),
    ]
    if fault_rate > 0:
        specs.append(FaultSpec(kind="seu", rate_per_epoch=fault_rate,
                               detect_ns=2_000.0))
        specs.append(FaultSpec(kind="link", rate_per_epoch=fault_rate * 0.5,
                               repair_ns=60_000.0))
    return FaultSchedule(seed=seed, specs=tuple(specs))


def chaos_cell(
    fault_rate: float,
    policy: str,
    recovery: bool,
    nodes: int = 3,
    spares: int = 1,
    epochs: int = 5,
    epoch_us: float = 600.0,
    rate_krps: float = 300.0,
    node_executor: str = "serial",
    seed: int = DEFAULT_SEED,
) -> List[Dict[str, Any]]:
    """One chaos fleet run; returns merged rows + recovery columns."""
    config = FleetConfig(
        nodes=nodes,
        placement="affinity",
        policy=policy,
        epochs=epochs,
        epoch_us=epoch_us,
        autoscaler=AutoscalerConfig(enabled=False),
        node_executor=node_executor,
        power=True,
        chaos=ChaosConfig(build_schedule(fault_rate, seed), recovery=recovery),
        spares=spares,
    )
    outcome = run_fleet(
        config, FLEET_TENANTS, total_rate_rps=rate_krps * 1000.0, seed=seed,
        extra_columns={"fault_rate": fault_rate, "policy": policy,
                       "recovery": recovery},
    )
    goodput = epoch_goodput(outcome.reports)
    pre = goodput[KILL_EPOCH - 1] if KILL_EPOCH >= 1 else goodput[0]
    post_epoch = min(KILL_EPOCH + RECOVERY_EPOCHS, len(goodput) - 1)
    for row in outcome.rows:
        row["pre_fault_goodput"] = pre
        row["post_recovery_goodput"] = goodput[post_epoch]
        row["goodput_recovery"] = (goodput[post_epoch] / pre) if pre else 0.0
        row["post_fault_good_total"] = sum(goodput[KILL_EPOCH + 1:])
    return outcome.rows


def chaos_summary(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Recovery-vs-ablation ratios per (fault_rate, policy) point."""
    aggregates = [row for row in rows if row.get("tenant") == "__all__"]
    summary: Dict[str, Any] = {}
    points: List[Tuple[float, str]] = sorted(
        {(row["fault_rate"], row["policy"]) for row in aggregates})
    for fault_rate, policy in points:
        cell = {bool(row["recovery"]): row for row in aggregates
                if row["fault_rate"] == fault_rate and row["policy"] == policy}
        label = f"{policy}@rate{fault_rate:g}"
        on = cell.get(True)
        if on is not None:
            summary[f"goodput_recovery[{label}]"] = on["goodput_recovery"]
            summary[f"recovered_within_{RECOVERY_EPOCHS}_epochs[{label}]"] = (
                on["goodput_recovery"] >= RECOVERY_FLOOR)
        off = cell.get(False)
        if on is not None and off is not None and off["post_fault_good_total"]:
            summary[f"recovery_goodput_gain[{label}]"] = (
                on["post_fault_good_total"] / off["post_fault_good_total"])
    recovered = [value for key, value in summary.items()
                 if key.startswith("recovered_within_")]
    if recovered:
        summary["all_points_recovered"] = all(recovered)
    return summary
