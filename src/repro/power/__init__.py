"""``repro.power`` — energy accounting and per-domain DVFS governors.

The subsystem has three layers (see ``docs/power.md``):

* :mod:`repro.power.model` — :class:`PowerConfig` (technology constants),
  :class:`PowerProbe` (the shared event counters the component hooks
  increment) and :class:`EnergyModel` (epoch-based static + dynamic energy
  integration with per-epoch power traces);
* :mod:`repro.power.governor` — :class:`Governor` and the ``Fixed`` /
  ``Ladder`` / ``EnergyCap`` DVFS policies, retuning the eFPGA clock
  through the existing :class:`ProgrammableClockGenerator` path;
* :mod:`repro.power.experiments` — the ``power_efficiency`` and
  ``dvfs_policy`` experiment cells registered in :mod:`repro.api`
  (imported lazily by the registry, not here, to keep this package free of
  platform/workload dependencies).
"""

from repro.power.model import EnergyModel, EpochSample, PowerConfig, PowerProbe
from repro.power.governor import (
    DEFAULT_LADDER,
    EnergyCapGovernor,
    FixedGovernor,
    Governor,
    LadderGovernor,
)

__all__ = [
    "DEFAULT_LADDER",
    "EnergyCapGovernor",
    "EnergyModel",
    "EpochSample",
    "FixedGovernor",
    "Governor",
    "LadderGovernor",
    "PowerConfig",
    "PowerProbe",
]
