"""Memory Hub: the eFPGA's coherent window onto the memory system.

Each Duet Adapter contains one or more Memory Hubs, "each attached to the
NoC using an independent connection" (Sec. II-B).  A hub bundles

* the hardware :class:`~repro.core.proxy_cache.ProxyCache` (or, for the
  FPSoC baseline, a :class:`~repro.core.slow_cache.SlowCacheAgent`),
* an exception handler with timeout and parity checks,
* a bank of feature switches,
* a :class:`~repro.core.tlb.Tlb` for virtualized accelerators, and
* the clock-domain-crossing FIFOs that carry accelerator requests in and
  responses / invalidations out.

The accelerator-facing interface is :class:`HubMemoryPort`, the simple
Load/Store protocol of Sec. II-C.  Invalidation forwarding into a soft
cache is fire-and-forget: the Proxy Cache never waits for the eFPGA.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import DuetError, ErrorCode, ExceptionHandler
from repro.core.feature_switches import FeatureSwitches
from repro.core.proxy_cache import ProxyCache
from repro.core.slow_cache import SlowCacheAgent
from repro.core.soft_cache import SoftCache, SoftCacheConfig
from repro.core.tlb import PageFault, Tlb
from repro.fpga.accelerator import FpgaMemoryPort
from repro.mem.address import AddressMap
from repro.mem.config import MemoryConfig
from repro.mem.dram import MainMemory
from repro.noc import TileRouter
from repro.sim import AsyncFifo, ClockDomain, Event, Simulator, StatSet

#: Cache-organization modes for the FPGA side of a Memory Hub.
MODE_DUET = "duet"      # hardware Proxy Cache in the fast clock domain
MODE_FPSOC = "fpsoc"    # FPGA-side cache in the slow clock domain


class HubMemoryPort(FpgaMemoryPort):
    """The accelerator-facing Load/Store interface of one Memory Hub."""

    def __init__(self, hub: "MemoryHub") -> None:
        self.hub = hub

    # -- blocking operations -------------------------------------------- #
    def load(self, addr: int):
        event = yield from self.issue("load", addr)
        value = yield from self._complete(event)
        return value

    def load_line(self, addr: int):
        event = yield from self.issue("load_line", addr)
        value = yield from self._complete(event)
        return value

    def store(self, addr: int, value: int):
        event = yield from self.issue("store", addr, value)
        yield from self._complete(event)
        return None

    def amo(self, addr: int, fn):
        event = yield from self.issue("amo", addr, fn=fn)
        value = yield from self._complete(event)
        return value

    # -- pipelined (split-transaction) operations ------------------------ #
    def issue(self, op: str, addr: int, value: int = 0, fn=None, corrupt: bool = False):
        """Issue a request without waiting; returns its completion event."""
        completion = yield from self.hub._issue_from_fpga(op, addr, value, fn, corrupt)
        return completion

    def _complete(self, event: Event):
        value, error = yield event
        if error is not None:
            raise DuetError(error)
        return value

    def wait(self, event: Event):
        """Wait for a previously issued request and return its value."""
        value = yield from self._complete(event)
        return value


class MemoryHub:
    """One Memory Hub of a Duet Adapter."""

    def __init__(
        self,
        sim: Simulator,
        sys_domain: ClockDomain,
        fpga_domain: ClockDomain,
        tile_router: TileRouter,
        address_map: AddressMap,
        config: MemoryConfig,
        memory: MainMemory,
        name: str = "",
        target: str = "mh",
        mode: str = MODE_DUET,
        sync_stages: int = 2,
        switches: Optional[FeatureSwitches] = None,
        exceptions: Optional[ExceptionHandler] = None,
    ) -> None:
        if mode not in (MODE_DUET, MODE_FPSOC):
            raise ValueError(f"unknown Memory Hub mode {mode!r}")
        self.sim = sim
        self.sys_domain = sys_domain
        self.fpga_domain = fpga_domain
        self.node = tile_router.node
        self.address_map = address_map
        self.config = config
        self.memory = memory
        self.name = name or f"memhub@{self.node}"
        self.mode = mode
        self.switches = switches or FeatureSwitches(f"{self.name}.switches")
        self.exceptions = exceptions or ExceptionHandler(sim, sys_domain, name=f"{self.name}.exc")
        self.tlb = Tlb(sim, sys_domain, name=f"{self.name}.tlb")
        self.stats = StatSet(f"{self.name}.stats")

        if mode == MODE_DUET:
            self.cache = ProxyCache(
                sim, sys_domain, tile_router, address_map, config, memory,
                name=f"{self.name}.proxy", target=target,
            )
        else:
            self.cache = SlowCacheAgent(
                sim, fpga_domain, sys_domain, tile_router, address_map, config, memory,
                name=f"{self.name}.slowcache", target=target, sync_stages=sync_stages,
            )
        self.cache.add_line_listener(self._on_line_lost)

        # FPGA <-> hub CDC FIFOs (only exercised in Duet mode; in FPSoC mode
        # the accelerator datapath talks to the slow cache directly).
        self._req_fifo = AsyncFifo(sim, fpga_domain, sys_domain, capacity=16,
                                   sync_stages=sync_stages, name=f"{self.name}.req")
        self._resp_fifo = AsyncFifo(sim, sys_domain, fpga_domain, capacity=16,
                                    sync_stages=sync_stages, name=f"{self.name}.resp")
        self._inv_fifo = AsyncFifo(sim, sys_domain, fpga_domain, capacity=64,
                                   sync_stages=sync_stages, name=f"{self.name}.inv")
        self._pending: Dict[int, Event] = {}
        self._request_ids = itertools.count()
        self._soft_caches: List[SoftCache] = []
        if mode == MODE_DUET:
            sim.process(self._server(), name=f"{self.name}.server")
            sim.process(self._response_dispatcher(), name=f"{self.name}.resp-dispatch")

    # ------------------------------------------------------------------ #
    # Activation / configuration
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        return self.switches.enabled(FeatureSwitches.ACTIVE)

    def deactivate(self) -> None:
        """Stop accepting eFPGA requests; the Proxy Cache stays coherent."""
        self.switches.set(FeatureSwitches.ACTIVE, False)

    def activate(self) -> None:
        self.switches.set(FeatureSwitches.ACTIVE, True)

    def fpga_port(self) -> FpgaMemoryPort:
        """The raw (hard-cache-only) port handed to the accelerator."""
        if self.mode == MODE_FPSOC:
            return _SlowCachePort(self)
        return HubMemoryPort(self)

    def soft_cached_port(self, config: Optional[SoftCacheConfig] = None) -> SoftCache:
        """Wrap the hub port in a soft cache and enable invalidation forwarding."""
        if self.mode == MODE_FPSOC:
            raise DuetError(
                "the FPSoC baseline hardens the FPGA-side cache; soft caches "
                "are only supported on Duet Memory Hubs"
            )
        soft_cache = SoftCache(
            self.sim, self.fpga_domain, HubMemoryPort(self), config,
            name=f"{self.name}.softcache",
        )
        self.connect_soft_cache(soft_cache)
        return soft_cache

    def connect_soft_cache(self, soft_cache: SoftCache) -> None:
        """Route forwarded invalidations into ``soft_cache`` (no acks back)."""
        self.switches.set(FeatureSwitches.FORWARD_INVALIDATIONS, True)
        self._soft_caches.append(soft_cache)
        self.sim.process(self._invalidation_drain(soft_cache),
                         name=f"{self.name}.inv-drain")

    # ------------------------------------------------------------------ #
    # FPGA-side request path (Duet mode)
    # ------------------------------------------------------------------ #
    def _issue_from_fpga(self, op: str, addr: int, value: int, fn, corrupt: bool):
        request_id = next(self._request_ids)
        completion = self.sim.event(f"{self.name}.req#{request_id}")
        self._pending[request_id] = completion
        self.stats.counter(f"fpga_{op}").increment()
        yield from self._req_fifo.put((request_id, op, addr, value, fn, corrupt))
        return completion

    def _server(self):
        """Fast-domain server: pops eFPGA requests and serves them concurrently."""
        while True:
            request = yield from self._req_fifo.get()
            self.sim.process(self._serve_one(request), name=f"{self.name}.serve")

    def _serve_one(self, request: Tuple):
        request_id, op, addr, value, fn, corrupt = request
        if not self.active:
            yield from self._respond(request_id, None, "memory hub deactivated")
            return None
        if not self.exceptions.check_parity({"corrupt": corrupt}):
            self.deactivate()
            yield from self._respond(request_id, None, "parity error on eFPGA output")
            return None
        if self.switches.enabled(FeatureSwitches.TLB_ENABLED):
            try:
                addr = yield from self.tlb.translate(addr)
            except PageFault as fault:
                self.exceptions.raise_error(ErrorCode.PAGE_FAULT_FATAL)
                self.deactivate()
                yield from self._respond(request_id, None, str(fault))
                return None
        result = None
        if op == "load":
            result = yield from self.cache.load(addr)
        elif op == "load_line":
            line = self.address_map.line_of(addr)
            yield from self.cache.load(line)
            result = [
                self.memory.read_word(line + offset * self.config.word_bytes)
                for offset in range(self.config.words_per_line)
            ]
        elif op == "store":
            yield from self.cache.store(addr, value)
        elif op == "amo":
            if not self.switches.enabled(FeatureSwitches.ATOMICS_ENABLED):
                yield from self._respond(request_id, None, "atomics are disabled")
                return None
            result = yield from self.cache.amo(addr, fn)
        else:
            yield from self._respond(request_id, None, f"unknown operation {op!r}")
            return None
        yield from self._respond(request_id, result, None)
        return None

    def _respond(self, request_id: int, value, error: Optional[str]):
        yield from self._resp_fifo.put((request_id, value, error))
        return None

    def _response_dispatcher(self):
        """FPGA-domain process completing the accelerator's pending requests."""
        while True:
            request_id, value, error = yield from self._resp_fifo.get()
            completion = self._pending.pop(request_id, None)
            if completion is not None and not completion.triggered:
                completion.succeed((value, error))

    # ------------------------------------------------------------------ #
    # Invalidation forwarding (fire-and-forget, Sec. II-C)
    # ------------------------------------------------------------------ #
    def _on_line_lost(self, line_addr: int, reason: str) -> None:
        if not self.switches.enabled(FeatureSwitches.FORWARD_INVALIDATIONS):
            return
        self.stats.counter("invalidations_forwarded").increment()
        self._inv_fifo.try_put(line_addr)

    def _invalidation_drain(self, soft_cache: SoftCache):
        while True:
            line_addr = yield from self._inv_fifo.get()
            yield self.fpga_domain.wait_cycles(1)
            soft_cache.invalidate_line(line_addr)


class _SlowCachePort(FpgaMemoryPort):
    """FPSoC mode: the accelerator talks to the slow cache in its own domain."""

    def __init__(self, hub: MemoryHub) -> None:
        self.hub = hub

    def load(self, addr: int):
        value = yield from self.hub.cache.load(addr)
        return value

    def load_line(self, addr: int):
        line = self.hub.address_map.line_of(addr)
        yield from self.hub.cache.load(line)
        return [
            self.hub.memory.read_word(line + offset * self.hub.config.word_bytes)
            for offset in range(self.hub.config.words_per_line)
        ]

    def store(self, addr: int, value: int):
        yield from self.hub.cache.store(addr, value)
        return None

    def amo(self, addr: int, fn):
        value = yield from self.hub.cache.amo(addr, fn)
        return value
