"""Shared plumbing for the application benchmarks.

Every benchmark follows the Sec. V-D methodology:

* the processor-only baseline runs the algorithm in "bare metal" software
  with a warm cache;
* the accelerated versions (FPSoC and Duet) install the soft accelerator,
  set the eFPGA clock to the accelerator's post-route Fmax (Table II), start
  from a cold accelerator cache, and include every communication and
  synchronization overhead in the measured runtime;
* speedup is runtime(CPU) / runtime(system), and the Area-Delay Product uses
  the area model of :mod:`repro.platform.area`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.platform.area import AreaModel
from repro.platform.config import DollyConfig, SystemKind
from repro.platform.dolly import DollySystem, build_system
from repro.power.model import PowerConfig


@dataclass
class WorkloadParams:
    """Knobs shared by all benchmarks (problem sizes live in each module)."""

    num_processors: int = 1
    num_memory_hubs: int = 1
    fpga_mhz: Optional[float] = None
    seed: int = 2023
    #: Enable energy accounting for this run (``None`` keeps it off — the
    #: default, under which timing is bit-identical to pre-power builds).
    power: Optional[PowerConfig] = None


@dataclass
class BenchmarkResult:
    """One (benchmark, system) measurement."""

    benchmark: str
    system: SystemKind
    system_name: str
    runtime_ns: float
    correct: bool
    checksum: Any = None
    num_processors: int = 1
    num_memory_hubs: int = 0
    fpga_mhz: Optional[float] = None
    efpga_area_mm2: float = 0.0
    chip_area_mm2: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def speedup_over(self, baseline: "BenchmarkResult") -> float:
        return baseline.runtime_ns / self.runtime_ns if self.runtime_ns > 0 else 0.0

    def adp(self) -> float:
        return self.chip_area_mm2 * self.runtime_ns

    def normalized_adp(self, baseline: "BenchmarkResult") -> float:
        return self.adp() / baseline.adp() if baseline.adp() > 0 else 0.0


def build_benchmark_system(kind: SystemKind, params: WorkloadParams) -> DollySystem:
    """Build the system-under-test for one benchmark run."""
    power = params.power if params.power is not None else PowerConfig()
    if kind is SystemKind.CPU_ONLY:
        config = DollyConfig.cpu_only(params.num_processors, power=power)
    elif kind is SystemKind.DUET:
        config = DollyConfig.dolly(params.num_processors, params.num_memory_hubs,
                                   fpga_mhz=params.fpga_mhz, power=power)
    else:
        config = DollyConfig.fpsoc(params.num_processors, params.num_memory_hubs,
                                   fpga_mhz=params.fpga_mhz, power=power)
    return build_system(config)


def finalize_result(
    benchmark: str,
    kind: SystemKind,
    system: DollySystem,
    runtime_ns: float,
    correct: bool,
    checksum: Any = None,
    efpga_area_mm2: float = 0.0,
    extra: Optional[Dict[str, Any]] = None,
) -> BenchmarkResult:
    """Attach area accounting to a raw runtime measurement."""
    area_model = AreaModel()
    processors = system.config.num_processors
    hubs = system.config.num_memory_hubs
    if kind is SystemKind.CPU_ONLY:
        chip_area = area_model.processor_only_area(processors)
    elif kind is SystemKind.FPSOC:
        chip_area = area_model.fpsoc_area(processors, efpga_area_mm2)
    else:
        chip_area = area_model.duet_area(processors, hubs, efpga_area_mm2)
    fpga_mhz = None
    if system.fpga_domain is not None:
        fpga_mhz = system.fpga_domain.freq_mhz
    extra = dict(extra or {})
    energy = system.energy
    if energy is not None and energy.last_window_pj is not None:
        energy_nj = energy.last_window_pj / 1000.0
        extra["energy_nj"] = energy_nj
        extra["energy_breakdown_nj"] = {
            category: pj / 1000.0
            for category, pj in sorted(energy.last_window_breakdown.items())
        }
        extra["avg_power_mw"] = energy.last_window_avg_power_mw
    return BenchmarkResult(
        benchmark=benchmark,
        system=kind,
        system_name=system.config.name,
        runtime_ns=runtime_ns,
        correct=correct,
        checksum=checksum,
        num_processors=processors,
        num_memory_hubs=hubs,
        fpga_mhz=fpga_mhz,
        efpga_area_mm2=efpga_area_mm2,
        chip_area_mm2=chip_area,
        extra=extra,
    )
