"""Unit tests for the eFPGA substrate: fabric, synthesis, bitstream, clocking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fpga import (
    AcceleratorDesign,
    AcceleratorEnvironment,
    Bitstream,
    BitstreamError,
    FabricInstance,
    FabricSpec,
    ProgrammableClockGenerator,
    Scratchpad,
    SoftAccelerator,
    SynthesisModel,
)
from repro.sim import ClockDomain, Simulator


# --------------------------------------------------------------------------- #
# Fabric
# --------------------------------------------------------------------------- #
def test_fabric_capacities_scale_with_size():
    spec = FabricSpec()
    small = FabricInstance(spec, columns=8, rows=8)
    large = FabricInstance(spec, columns=16, rows=16)
    assert large.total_luts > small.total_luts
    assert large.total_bram_kbits >= small.total_bram_kbits
    assert large.area_mm2 > small.area_mm2
    assert large.config_bits > small.config_bits


def test_fabric_minimal_for_fits_requirements():
    spec = FabricSpec()
    fabric = FabricInstance.minimal_for(spec, clbs=200, bram_kbits=128, dsps=2)
    assert fabric.fits(200, 128, 2)


def test_fabric_rejects_degenerate_geometry():
    with pytest.raises(ValueError):
        FabricInstance(FabricSpec(), columns=0, rows=4)


@given(
    clbs=st.integers(min_value=1, max_value=3000),
    bram=st.integers(min_value=0, max_value=2048),
)
@settings(max_examples=30, deadline=None)
def test_fabric_minimal_for_always_fits(clbs, bram):
    fabric = FabricInstance.minimal_for(FabricSpec(), clbs=clbs, bram_kbits=bram, dsps=0)
    assert fabric.fits(clbs, bram, 0)


# --------------------------------------------------------------------------- #
# Synthesis model
# --------------------------------------------------------------------------- #
def test_synthesis_produces_plausible_frequency_range():
    model = SynthesisModel()
    small = AcceleratorDesign(name="small", luts=300, ffs=400, logic_depth=5)
    large = AcceleratorDesign(name="large", luts=8000, ffs=9000, logic_depth=20,
                              routing_pressure=0.8)
    small_result = model.implement(small)
    large_result = model.implement(large)
    # The paper's accelerators run at 85-282 MHz (Table II).
    assert 50.0 < small_result.fmax_mhz < 600.0
    assert large_result.fmax_mhz < small_result.fmax_mhz
    assert large_result.area_mm2 > small_result.area_mm2


def test_synthesis_utilization_bounded():
    model = SynthesisModel()
    design = AcceleratorDesign(name="x", luts=1000, ffs=500, bram_kbits=96, logic_depth=10)
    result = model.implement(design)
    assert 0.0 < result.clb_utilization <= 1.0
    assert 0.0 <= result.bram_utilization <= 1.0
    assert result.normalized_area(2.66) > 0.0


def test_synthesis_rejects_design_too_big_for_given_fabric():
    model = SynthesisModel()
    fabric = FabricInstance(FabricSpec(), columns=4, rows=4)
    design = AcceleratorDesign(name="big", luts=100000, ffs=100, logic_depth=10)
    with pytest.raises(ValueError):
        model.implement(design, fabric=fabric)


def test_design_validation():
    with pytest.raises(ValueError):
        AcceleratorDesign(name="bad", luts=0, ffs=0)
    with pytest.raises(ValueError):
        AcceleratorDesign(name="bad", luts=10, ffs=0, routing_pressure=2.0)
    with pytest.raises(ValueError):
        AcceleratorDesign(name="bad", luts=10, ffs=0, logic_depth=0)


@given(depth=st.integers(min_value=1, max_value=40))
@settings(max_examples=20, deadline=None)
def test_synthesis_fmax_monotone_in_logic_depth(depth):
    model = SynthesisModel()
    shallow = model.implement(AcceleratorDesign(name="a", luts=500, ffs=500, logic_depth=depth))
    deeper = model.implement(AcceleratorDesign(name="b", luts=500, ffs=500, logic_depth=depth + 1))
    assert deeper.fmax_mhz < shallow.fmax_mhz


# --------------------------------------------------------------------------- #
# Bitstream
# --------------------------------------------------------------------------- #
def test_bitstream_generation_and_verification():
    design = AcceleratorDesign(name="acc", luts=100, ffs=100)
    fabric = FabricInstance(FabricSpec(), columns=6, rows=6)
    bitstream = Bitstream.generate(design, fabric)
    assert bitstream.size_bytes == fabric.config_bits // 8
    assert bitstream.verify()


def test_bitstream_is_deterministic_per_design():
    design = AcceleratorDesign(name="acc", luts=100, ffs=100)
    fabric = FabricInstance(FabricSpec(), columns=6, rows=6)
    a = Bitstream.generate(design, fabric)
    b = Bitstream.generate(design, fabric)
    assert a.data == b.data
    other = Bitstream.generate(AcceleratorDesign(name="other", luts=100, ffs=100), fabric)
    assert other.data != a.data


def test_bitstream_corruption_detected():
    design = AcceleratorDesign(name="acc", luts=100, ffs=100)
    fabric = FabricInstance(FabricSpec(), columns=6, rows=6)
    bitstream = Bitstream.generate(design, fabric)
    corrupted = bitstream.corrupted(offset=17)
    assert not corrupted.verify()
    assert bitstream.verify()


def test_bitstream_corrupted_rejects_noop_mask():
    """A flip mask that cannot change the payload would silently return an
    *uncorrupted* copy — fault-injection tests relying on it would pass
    vacuously.  It must raise instead."""
    design = AcceleratorDesign(name="acc", luts=100, ffs=100)
    fabric = FabricInstance(FabricSpec(), columns=6, rows=6)
    bitstream = Bitstream.generate(design, fabric)
    for mask in (0, -1, -0xFF):
        with pytest.raises(BitstreamError, match="positive bit pattern"):
            bitstream.corrupted(flip_mask=mask)
    # Multi-byte masks corrupt the bytes their non-zero mask bytes cover.
    assert not bitstream.corrupted(flip_mask=0x101).verify()
    assert not bitstream.corrupted(flip_mask=0x100).verify()


def test_bitstream_corrupted_multi_byte_burst_and_wraparound():
    """A multi-byte burst lands little-endian from the offset, wrapping
    around the end of the payload (the chaos layer draws arbitrary
    offsets)."""
    design = AcceleratorDesign(name="acc", luts=100, ffs=100)
    fabric = FabricInstance(FabricSpec(), columns=6, rows=6)
    bitstream = Bitstream.generate(design, fabric)
    size = bitstream.size_bytes

    burst = bitstream.corrupted(offset=7, flip_mask=0x0201FF)
    assert not burst.verify()
    changed = [i for i in range(size) if burst.data[i] != bitstream.data[i]]
    assert changed == [7, 8, 9]
    assert burst.data[7] == bitstream.data[7] ^ 0xFF
    assert burst.data[8] == bitstream.data[8] ^ 0x01
    assert burst.data[9] == bitstream.data[9] ^ 0x02

    wrapped = bitstream.corrupted(offset=size - 1, flip_mask=0xFFFF)
    assert not wrapped.verify()
    changed = [i for i in range(size) if wrapped.data[i] != bitstream.data[i]]
    assert changed == [0, size - 1]
    # Offsets are taken modulo the payload size, so any drawn offset lands.
    assert (bitstream.corrupted(offset=size * 3 + 5).data
            == bitstream.corrupted(offset=5).data)


def test_bitstream_corrupted_rejects_empty_and_cancelling_masks():
    empty = Bitstream(design_name="none", data=b"", crc=0, config_bits=0)
    with pytest.raises(BitstreamError, match="empty"):
        empty.corrupted()
    # On a 1-byte payload a 2-byte mask folds both bytes onto index 0;
    # 0x0101 XORs it twice with 0x01 and cancels out.
    tiny = Bitstream(design_name="tiny", data=b"\x42",
                     crc=__import__("zlib").crc32(b"\x42"), config_bits=8)
    with pytest.raises(BitstreamError, match="cancels out"):
        tiny.corrupted(flip_mask=0x0101)
    assert not tiny.corrupted(flip_mask=0x01).verify()


def test_corruption_mid_transfer_trips_the_post_transfer_check():
    """An upset landing while the configuration memory is being written
    must not activate a corrupt design: ``ControlHub.program`` re-verifies
    after the transfer window and raises (see repro.chaos)."""
    from repro.core.exceptions import DuetError
    from repro.serve.scheduler import FabricScheduler, ServeConfig

    sim = Simulator()
    scheduler = FabricScheduler(sim, ServeConfig(accelerators=("popcount",)))
    hub = scheduler.fabrics[0].control_hub
    bitstream = scheduler.accelerators["popcount"].bitstream
    errors = []

    def programmer():
        try:
            yield from hub.program(bitstream)
        except DuetError as exc:
            errors.append(str(exc))

    def upset():
        # Fire inside the transfer window: the pre-transfer verify already
        # passed, so only the post-transfer re-check can catch this.
        yield sim.timeout(1.0)
        assert hub.programming_busy
        bitstream.data = bitstream.corrupted(offset=3).data

    sim.process(programmer())
    sim.process(upset())
    sim.run()
    assert len(errors) == 1
    assert "corrupted during the configuration transfer" in errors[0]
    assert hub.programmed_bitstream is None
    assert not hub.programming_busy


# --------------------------------------------------------------------------- #
# Clock generator
# --------------------------------------------------------------------------- #
def test_clock_generator_divider_and_pll_modes():
    sim = Simulator()
    system = ClockDomain(sim, 1000.0, "sys")
    clkgen = ProgrammableClockGenerator(sim, system, initial_mhz=100.0)
    assert clkgen.set_divider(4) == pytest.approx(250.0)
    assert clkgen.frequency_mhz == pytest.approx(250.0)
    assert clkgen.set_frequency(333.0) == pytest.approx(333.0)
    assert clkgen.ratio_to_system == pytest.approx(0.333)


def test_clock_generator_respects_fmax():
    sim = Simulator()
    system = ClockDomain(sim, 1000.0, "sys")
    clkgen = ProgrammableClockGenerator(sim, system, initial_mhz=400.0)
    clkgen.set_max_frequency(200.0)
    assert clkgen.frequency_mhz == pytest.approx(200.0)
    assert clkgen.set_frequency(500.0) == pytest.approx(200.0)
    with pytest.raises(ValueError):
        clkgen.set_divider(2)  # 500 MHz > Fmax


def test_clock_generator_rejects_bad_inputs():
    sim = Simulator()
    system = ClockDomain(sim, 1000.0, "sys")
    clkgen = ProgrammableClockGenerator(sim, system)
    with pytest.raises(ValueError):
        clkgen.set_frequency(0.0)
    with pytest.raises(ValueError):
        clkgen.set_divider(0)


# --------------------------------------------------------------------------- #
# Scratchpad
# --------------------------------------------------------------------------- #
def test_scratchpad_read_write_and_timing():
    sim = Simulator()
    domain = ClockDomain(sim, 100.0, "fpga")
    scratchpad = Scratchpad(domain, size_bytes=1024)

    def body():
        start = sim.now
        yield from scratchpad.write_burst(0, [1, 2, 3, 4])
        values = yield from scratchpad.read_burst(0, 4)
        return values, sim.now - start

    values, elapsed = sim.run_process(body())
    assert values == [1, 2, 3, 4]
    # Eight accesses at one per 10 ns FPGA cycle.
    assert elapsed >= 8 * domain.period_ns - 1e-6


def test_scratchpad_bounds_checked():
    sim = Simulator()
    domain = ClockDomain(sim, 100.0, "fpga")
    scratchpad = Scratchpad(domain, size_bytes=64, word_bytes=8)
    with pytest.raises(IndexError):
        scratchpad.peek(8)
    scratchpad.poke(7, 99)
    assert scratchpad.peek(7) == 99


# --------------------------------------------------------------------------- #
# SoftAccelerator lifecycle
# --------------------------------------------------------------------------- #
class _CounterAccelerator(SoftAccelerator):
    DESIGN = AcceleratorDesign(name="counter", luts=50, ffs=60, mem_ports=0)

    def behavior(self):
        total = 0
        for _ in range(10):
            yield self.cycles(1)
            total += 1
        return total


def test_accelerator_requires_attach_before_start():
    accelerator = _CounterAccelerator()
    with pytest.raises(RuntimeError):
        accelerator.start()


def test_accelerator_runs_in_fpga_domain():
    sim = Simulator()
    domain = ClockDomain(sim, 100.0, "fpga")
    accelerator = _CounterAccelerator()
    accelerator.attach(AcceleratorEnvironment(sim=sim, domain=domain))
    process = accelerator.start()
    sim.run()
    assert process.done.value == 10
    assert sim.now >= 10 * domain.period_ns - 1e-6


def test_accelerator_mem_port_requirement_enforced():
    class NeedsPorts(SoftAccelerator):
        DESIGN = AcceleratorDesign(name="needs", luts=10, ffs=10, mem_ports=2)

        def behavior(self):
            yield self.cycles(1)

    sim = Simulator()
    domain = ClockDomain(sim, 100.0, "fpga")
    accelerator = NeedsPorts()
    with pytest.raises(ValueError):
        accelerator.attach(AcceleratorEnvironment(sim=sim, domain=domain, mem_ports=[]))
