"""2D-mesh topology and XY routing.

Tiles are numbered row-major: node ``n`` sits at ``(x, y) = (n % width,
n // width)``.  Routes are dimension-ordered (X first, then Y), which makes
them deterministic — together with FIFO links this yields the point-to-point
ordering the coherence protocol and the Proxy Cache depend on.
"""

from __future__ import annotations

from typing import List, Tuple

Link = Tuple[int, int]


class Mesh2D:
    """Coordinate math and route computation for a ``width`` x ``height`` mesh."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh dimensions must be positive ({width}x{height})")
        self.width = width
        self.height = height

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Return the ``(x, y)`` coordinates of ``node``."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def hop_count(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Link]:
        """Return the XY route as a list of directed links ``(from, to)``.

        An empty list means source and destination are the same tile (the
        message never enters the network fabric).
        """
        self._check_node(src)
        self._check_node(dst)
        links: List[Link] = []
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        current = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = self.node_at(x, y)
            links.append((current, nxt))
            current = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = self.node_at(x, y)
            links.append((current, nxt))
            current = nxt
        return links

    def neighbors(self, node: int) -> List[int]:
        """Return the mesh neighbours of ``node``."""
        x, y = self.coordinates(node)
        result = []
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                result.append(self.node_at(nx, ny))
        return result

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.node_count):
            raise ValueError(f"node {node} outside mesh of {self.node_count} tiles")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mesh2D {self.width}x{self.height}>"
