"""PDES benchmark (Dolly-P{4,8,16}M1, hardware augmentation).

Parallel discrete event simulation of a small digital circuit: gates with
propagation delays, events carrying (timestamp, gate) pairs.  The
processor-only baseline keeps a single shared event queue arbitrated with an
MCS lock (Sec. V-D), which becomes the bottleneck as cores are added.  The
accelerated versions replace the queue with the eFPGA-emulated task
scheduler: cores push new events into an FPGA-bound FIFO and pull ready
events from a CPU-bound FIFO, and the conservative window advance happens in
hardware.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.accel.pdes_scheduler import (
    COMMIT_COMMAND,
    EMPTY_HANDLE,
    FLUSH_COMMAND,
    PdesSchedulerAccelerator,
    REG_READY,
    REG_SCHEDULE,
    STOP_COMMAND,
    decode_event,
    encode_event,
    register_layout,
)
from repro.core.shadow_registers import BOGUS_VALUE
from repro.cpu.sync import McsLock
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

DEFAULT_GATES = 24
DEFAULT_INITIAL_EVENTS = 24
DEFAULT_MAX_EVENTS = 120
WORD_BYTES = 8
#: Instructions to evaluate one gate (load inputs, evaluate, schedule fanout).
GATE_EVAL_OPS = 40


def _make_circuit(gates: int, seed: int) -> List[List[int]]:
    """Random fanout lists: gate -> downstream gates."""
    rng = random.Random(seed)
    fanout = []
    for gate in range(gates):
        outputs = {(gate + 1) % gates}
        if rng.random() < 0.6:
            outputs.add(rng.randrange(gates))
        fanout.append(sorted(outputs))
    return fanout


def _delays(gates: int, seed: int) -> List[int]:
    rng = random.Random(seed + 1)
    return [rng.randint(1, 5) for _ in range(gates)]


def _reference_event_count(fanout, delays, initial_events, max_events) -> int:
    """Total number of events processed by a sequential reference simulator."""
    import heapq

    heap = list(initial_events)
    heapq.heapify(heap)
    processed = 0
    while heap and processed < max_events:
        timestamp, gate = heapq.heappop(heap)
        processed += 1
        if processed + len(heap) < max_events:
            for downstream in fanout[gate]:
                heapq.heappush(heap, (timestamp + delays[gate], downstream))
    return processed


def _initial_events(gates: int, count: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed + 2)
    return [(rng.randint(0, 3), rng.randrange(gates)) for _ in range(count)]


def run_cpu(params: Optional[WorkloadParams] = None, gates: int = DEFAULT_GATES,
            max_events: int = DEFAULT_MAX_EVENTS) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=4)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    fanout = _make_circuit(gates, params.seed)
    delays = _delays(gates, params.seed)
    initial = _initial_events(gates, DEFAULT_INITIAL_EVENTS, params.seed)
    expected = _reference_event_count(fanout, delays, initial, max_events)

    # Shared software event queue protected by an MCS lock.
    lock = McsLock(system.memory, max_threads=params.num_processors)
    queue: List[Tuple[int, int]] = sorted(initial)
    counters = {"processed": 0, "scheduled": len(initial)}
    queue_base = system.memory.allocate(4 * max_events * WORD_BYTES)

    def program(ctx, thread):
        import heapq

        local_processed = 0
        idle_spins = 0
        while True:
            yield from lock.acquire(ctx, thread)
            yield from ctx.load(queue_base)
            if counters["processed"] >= max_events or (not queue and idle_spins > 20):
                yield from lock.release(ctx, thread)
                return local_processed
            if not queue:
                yield from lock.release(ctx, thread)
                idle_spins += 1
                yield from ctx.compute(20)
                continue
            idle_spins = 0
            timestamp, gate = heapq.heappop(queue)
            counters["processed"] += 1
            yield from ctx.store(queue_base, counters["processed"])
            yield from lock.release(ctx, thread)
            # Evaluate the gate outside the critical section.
            yield from ctx.compute(GATE_EVAL_OPS)
            local_processed += 1
            new_events = []
            if counters["processed"] + len(queue) < max_events:
                for downstream in fanout[gate]:
                    new_events.append((timestamp + delays[gate], downstream))
            if new_events:
                yield from lock.acquire(ctx, thread)
                for event in new_events:
                    heapq.heappush(queue, event)
                    yield from ctx.store(queue_base + 8 * (counters["scheduled"] % max_events), 1)
                    counters["scheduled"] += 1
                yield from lock.release(ctx, thread)

    assignments = [(core, program, (core,)) for core in range(params.num_processors)]
    _, elapsed = system.run_programs(assignments, max_events=300_000_000)
    return finalize_result(
        f"pdes/{params.num_processors}", SystemKind.CPU_ONLY, system, elapsed,
        correct=counters["processed"] >= min(expected, max_events) - params.num_processors,
        checksum=counters["processed"],
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    gates: int = DEFAULT_GATES, max_events: int = DEFAULT_MAX_EVENTS) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=4, num_memory_hubs=1)
    system = build_benchmark_system(kind, params)
    accelerator = PdesSchedulerAccelerator()
    synthesis = system.install_accelerator(
        accelerator, registers=register_layout(), fpga_mhz=params.fpga_mhz
    )
    system.start_accelerator()
    adapter = system.adapter
    fanout = _make_circuit(gates, params.seed)
    delays = _delays(gates, params.seed)
    initial = _initial_events(gates, DEFAULT_INITIAL_EVENTS, params.seed)
    expected = _reference_event_count(fanout, delays, initial, max_events)
    counters = {"processed": 0}

    def program(ctx, thread):
        local_processed = 0
        if thread == 0:
            for timestamp, gate in initial:
                yield from ctx.mmio_write(adapter.register_addr(REG_SCHEDULE),
                                          encode_event(timestamp, gate))
        while counters["processed"] < max_events:
            # Blocking pop of the ready-event FIFO: the processor stalls only
            # until the scheduler dispatches work (or the run is flushed).
            ready = yield from ctx.mmio_read(adapter.register_addr(REG_READY))
            if ready in (BOGUS_VALUE, EMPTY_HANDLE) or ready is None:
                continue
            timestamp, gate = decode_event(ready)
            yield from ctx.compute(GATE_EVAL_OPS)
            counters["processed"] += 1
            local_processed += 1
            finished_run = counters["processed"] >= max_events
            if not finished_run:
                for downstream in fanout[gate]:
                    yield from ctx.mmio_write(adapter.register_addr(REG_SCHEDULE),
                                              encode_event(timestamp + delays[gate], downstream))
            yield from ctx.mmio_write(adapter.register_addr(REG_SCHEDULE), COMMIT_COMMAND)
            if finished_run:
                # Wake every sibling blocked on the ready FIFO so the run ends.
                yield from ctx.mmio_write(adapter.register_addr(REG_SCHEDULE),
                                          FLUSH_COMMAND | params.num_processors)
        return local_processed

    assignments = [(core, program, (core,)) for core in range(params.num_processors)]
    _, elapsed = system.run_programs(assignments, max_events=300_000_000)
    return finalize_result(
        f"pdes/{params.num_processors}", kind, system, elapsed,
        correct=counters["processed"] >= min(expected, max_events) - params.num_processors,
        checksum=counters["processed"],
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz},
    )


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        gates: int = DEFAULT_GATES, max_events: int = DEFAULT_MAX_EVENTS) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, gates, max_events)
    return run_accelerated(kind, params, gates, max_events)
