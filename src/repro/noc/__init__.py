"""Network-on-chip substrate.

Dolly (Sec. IV of the paper) is built on the OpenPiton P-Mesh NoC: a 2D mesh
with XY routing, three physical planes (request / forward-response / data in
the original), and point-to-point ordered delivery — a property the Proxy
Cache's no-acknowledgement protocol explicitly relies on.  This package
provides a transaction-level model of that network: deterministic routes,
batched per-link reservation for contention, per-plane resources, and
in-order delivery between any (source, destination) pair.

The fabric is pluggable: :class:`NocNetwork` routes over any
:class:`~repro.noc.topology.Topology` (``mesh`` — the paper's P-Mesh —
``torus``, ``ring`` or ``crossbar``), selected per system via
``DollyConfig.noc_topology`` or built directly with :func:`make_topology`.
See ``docs/noc.md`` for the topology gallery and the model's invariants.
"""

from repro.noc.message import NocMessage, MessagePlane
from repro.noc.topology import (
    TOPOLOGY_KINDS,
    Crossbar,
    Mesh2D,
    NocRouteError,
    Ring,
    Topology,
    Torus2D,
    make_topology,
)
from repro.noc.network import MeshNetwork, NocNetwork, NocEndpoint
from repro.noc.port import NocPort, TileRouter

__all__ = [
    "NocMessage",
    "MessagePlane",
    "Topology",
    "TOPOLOGY_KINDS",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "Crossbar",
    "NocRouteError",
    "make_topology",
    "NocNetwork",
    "MeshNetwork",
    "NocEndpoint",
    "NocPort",
    "TileRouter",
]
