#!/usr/bin/env python3
"""Check intra-repository markdown links.

Scans every tracked ``*.md`` file for inline links and images
(``[text](target)`` / ``![alt](target)``) and reference definitions
(``[label]: target``), and verifies that every *relative* target resolves to
an existing file or directory.  External schemes (``http(s)``, ``mailto``)
and pure in-page anchors (``#section``) are skipped; a fragment on a
relative link is stripped before the existence check.

Used by the CI ``docs`` job and by ``tests/test_docs.py``; run manually as::

    python tools/check_doc_links.py [ROOT]

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

#: Inline links/images.  Deliberately simple: no nested parens in targets.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+(?:\"[^\"]*\"|'[^']*'))?\)")
#: Reference-style definitions: `[label]: target`.
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Fenced code blocks, stripped before link extraction.
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)

_SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".hypothesis",
              "node_modules", ".venv", "venv"}


def iter_markdown_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for filename in sorted(filenames):
            if filename.endswith(".md"):
                yield os.path.join(dirpath, filename)


def extract_targets(markdown: str) -> List[str]:
    stripped = _CODE_FENCE.sub("", markdown)
    targets = _INLINE_LINK.findall(stripped)
    targets += _REFERENCE_DEF.findall(stripped)
    return targets


def is_checkable(target: str) -> bool:
    if not target or target.startswith("#"):
        return False
    scheme = target.split(":", 1)[0].lower()
    if ":" in target and scheme in ("http", "https", "mailto", "ftp"):
        return False
    return True


def check_file(path: str, root: str) -> List[Tuple[str, str]]:
    """Return (link, reason) tuples for every broken link in ``path``."""
    with open(path, encoding="utf-8") as handle:
        markdown = handle.read()
    broken = []
    base = os.path.dirname(path)
    for target in extract_targets(markdown):
        if not is_checkable(target):
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            broken.append((target, f"missing: {os.path.relpath(resolved, root)}"))
    return broken


def main(argv: List[str]) -> int:
    root = os.path.abspath(argv[1] if len(argv) > 1 else ".")
    failures = 0
    files = 0
    for path in iter_markdown_files(root):
        files += 1
        for target, reason in check_file(path, root):
            failures += 1
            print(f"{os.path.relpath(path, root)}: broken link {target!r} ({reason})")
    label = "link" if failures == 1 else "links"
    print(f"checked {files} markdown files: {failures} broken {label}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
