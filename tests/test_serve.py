"""Tests for the ``repro.serve`` subsystem: traffic, scheduling policies,
SLO accounting, and the serving experiments (including the acceptance pin
that reconfiguration affinity beats FCFS under reconfiguration pressure)."""

import json
import os

import pytest

from repro.api.registry import get_experiment
from repro.api.runner import Runner
from repro.serve import (
    ACCELERATOR_NAMES,
    POLICY_KINDS,
    AffinityPolicy,
    FabricScheduler,
    Request,
    ServeConfig,
    SloMonitor,
    TenantSpec,
    TrafficSource,
    build_sources,
    make_policy,
    materialize,
    resolve_accelerator,
)
from repro.serve.experiments import (
    DEFAULT_SEED,
    MIX_NAMES,
    TENANT_MIXES,
    get_mix,
    run_serve,
    serve_energy_cell,
    serve_policy_cell,
    serve_policy_summary,
)
from repro.sim import Simulator

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def aggregate_row(rows):
    return next(row for row in rows if row["tenant"] == "__all__")


# --------------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------------- #
def test_catalog_entries_materialize():
    for name in ACCELERATOR_NAMES:
        accelerator = materialize(name)
        assert accelerator.name == name
        assert accelerator.fmax_mhz > 0
        assert accelerator.bitstream.verify()
        assert accelerator.service_cycles(0) == accelerator.spec.base_cycles
        assert (accelerator.service_cycles(10)
                > accelerator.service_cycles(1))


def test_catalog_unknown_name():
    with pytest.raises(KeyError, match="catalog"):
        resolve_accelerator("fft")


# --------------------------------------------------------------------------- #
# Tenants and traffic
# --------------------------------------------------------------------------- #
def test_tenant_spec_validation():
    with pytest.raises(ValueError, match="pattern"):
        TenantSpec(name="x", accelerator="popcount", pattern="uniform")
    with pytest.raises(KeyError, match="catalog"):
        TenantSpec(name="x", accelerator="does-not-exist")
    with pytest.raises(ValueError, match="weight"):
        TenantSpec(name="x", accelerator="popcount", weight=0.0)
    with pytest.raises(ValueError, match="size_min"):
        TenantSpec(name="x", accelerator="popcount", size_min=9, size_max=3)
    with pytest.raises(ValueError, match="client"):
        TenantSpec(name="x", accelerator="popcount", pattern="closed", clients=0)
    # Timing knobs must be positive, or the arrival generators divide by
    # zero deep inside the simulation instead of failing at config time.
    with pytest.raises(ValueError, match="on_ns"):
        TenantSpec(name="x", accelerator="popcount", pattern="bursty", on_ns=0.0)
    with pytest.raises(ValueError, match="off_ns"):
        TenantSpec(name="x", accelerator="popcount", off_ns=-1.0)
    with pytest.raises(ValueError, match="period_ns"):
        TenantSpec(name="x", accelerator="popcount", pattern="diurnal",
                   period_ns=0.0)
    with pytest.raises(ValueError, match="think_ns"):
        TenantSpec(name="x", accelerator="popcount", pattern="closed",
                   think_ns=0.0)


def _collect_arrivals(pattern, seed=7, rate_rps=500_000.0, duration_ns=400_000.0,
                      **tenant_kwargs):
    sim = Simulator()
    tenant = TenantSpec(name="t", accelerator="popcount", pattern=pattern,
                        **tenant_kwargs)
    arrivals = []

    def submit(request):
        arrivals.append((sim.now, request.request_id, request.size))

    source = TrafficSource(sim, tenant, submit, rate_rps,
                           duration_ns=duration_ns, seed=seed)
    source.start()
    sim.run()
    return arrivals


@pytest.mark.parametrize("pattern", ["poisson", "bursty", "diurnal"])
def test_open_loop_arrivals_are_seed_deterministic(pattern):
    first = _collect_arrivals(pattern)
    second = _collect_arrivals(pattern)
    assert first == second
    assert first != _collect_arrivals(pattern, seed=8)
    # The long-run rate is in the right ballpark (0.5 req/us over 400 us).
    assert 60 <= len(first) <= 400


def _record_golden_stream(pattern, seed, rate_krps=200.0, duration_us=400.0,
                          **knobs):
    """Replays the recording recipe behind ``tests/data/traffic_golden.json``."""
    sim = Simulator()
    tenant = TenantSpec(name="golden", accelerator="popcount",
                        pattern=pattern, **knobs)
    seen = []

    def submit(request):
        request.arrival_ns = sim.now
        seen.append([round(sim.now, 6), request.size, request.request_id])
        if request.completion is not None:
            # Complete instantly so closed loops keep cycling.
            request.finish_ns = sim.now
            request.completion.succeed(request)

    source = TrafficSource(sim, tenant, submit, rate_krps * 1000.0,
                           duration_ns=duration_us * 1000.0, seed=seed)
    source.start()
    sim.run()
    return seen


def test_arrival_streams_match_pre_batching_golden():
    """The batched arrival generators reproduce the retired per-request
    draws bit for bit (``tests/data/traffic_golden.json`` was recorded
    before the ARRIVAL_CHUNK pre-generation rewrite)."""
    with open(os.path.join(DATA_DIR, "traffic_golden.json")) as handle:
        golden = json.load(handle)
    assert sorted({key.split("/")[0] for key in golden}) == [
        "bursty", "closed", "diurnal", "poisson"]
    for key in sorted(golden):
        pattern, seed = key.split("/")
        knobs = {"clients": 3, "think_ns": 5_000.0} if pattern == "closed" else {}
        fresh = _record_golden_stream(pattern, int(seed), **knobs)
        assert fresh == golden[key], f"stream {key} diverged from the recording"


def test_open_loop_stops_at_duration():
    arrivals = _collect_arrivals("poisson", duration_ns=100_000.0)
    assert all(t < 110_000.0 for t, _, _ in arrivals)


def test_open_loop_requires_positive_rate():
    sim = Simulator()
    tenant = TenantSpec(name="t", accelerator="popcount")
    with pytest.raises(ValueError, match="rate"):
        TrafficSource(sim, tenant, lambda r: None, 0.0,
                      duration_ns=1000.0, seed=1)


def test_closed_loop_clients_wait_for_completion():
    sim = Simulator()
    tenant = TenantSpec(name="t", accelerator="popcount", pattern="closed",
                        clients=2, think_ns=1_000.0)
    in_flight = {"now": 0, "max": 0}

    def submit(request):
        in_flight["now"] += 1
        in_flight["max"] = max(in_flight["max"], in_flight["now"])

        def finish():
            yield sim.timeout(500.0)
            request.finish_ns = sim.now
            in_flight["now"] -= 1
            request.completion.succeed(request)

        sim.process(finish())

    source = TrafficSource(sim, tenant, submit, 0.0,
                           duration_ns=50_000.0, seed=3)
    source.start()
    sim.run()
    assert source.emitted > 2
    # A closed loop never has more outstanding requests than clients.
    assert in_flight["max"] <= 2


def _instant_finish(sim):
    """A submit callback that completes every request after a fixed delay."""
    arrivals = []

    def submit(request):
        arrivals.append(sim.now)

        def finish():
            yield sim.timeout(100.0)
            request.finish_ns = sim.now
            if request.completion is not None:
                request.completion.succeed(request)

        sim.process(finish())

    return submit, arrivals


@pytest.mark.parametrize("pattern", ["poisson", "closed"])
def test_start_delay_blackout_delays_but_never_drops(pattern):
    """A migration blackout (``start_delay_ns``) postpones the tenant's
    whole arrival process; the first request lands after the blackout and
    the stream still flows (regression: closed-loop clients must pay the
    blackout *before* their think-time stagger, not lose requests to it)."""
    sim = Simulator()
    tenant = TenantSpec(name="t", accelerator="popcount", pattern=pattern,
                        clients=2, think_ns=1_000.0)
    submit, arrivals = _instant_finish(sim)
    source = TrafficSource(sim, tenant, submit, 500_000.0,
                           duration_ns=100_000.0, seed=3,
                           start_delay_ns=40_000.0)
    source.start()
    sim.run()
    assert source.emitted > 0
    assert min(arrivals) >= 40_000.0
    assert max(arrivals) < 110_000.0


@pytest.mark.parametrize("pattern", ["poisson", "closed"])
def test_blackout_longer_than_window_emits_nothing_and_terminates(pattern):
    """A blackout outlasting the epoch swallows the tenant's traffic
    entirely — zero arrivals, but the processes still terminate (a closed
    client must re-check the duration after the blackout, not block)."""
    sim = Simulator()
    tenant = TenantSpec(name="t", accelerator="popcount", pattern=pattern,
                        clients=2, think_ns=1_000.0)
    submit, arrivals = _instant_finish(sim)
    source = TrafficSource(sim, tenant, submit, 500_000.0,
                           duration_ns=100_000.0, seed=3,
                           start_delay_ns=250_000.0)
    processes = source.start()
    sim.run()
    assert arrivals == []
    assert source.emitted == 0
    assert all(process.finished for process in processes)


def test_request_lifecycle_metrics():
    request = Request(request_id=1, tenant="t", accelerator="popcount",
                      size=4, slo_ns=100.0)
    assert request.latency_ns == 0.0 and request.queue_wait_ns == 0.0
    request.arrival_ns, request.start_ns, request.finish_ns = 10.0, 30.0, 90.0
    assert request.queue_wait_ns == 20.0
    assert request.latency_ns == 80.0
    assert request.slo_met
    request.finish_ns = 200.0
    assert not request.slo_met


def test_build_sources_splits_rate_by_weight():
    sim = Simulator()
    tenants = TENANT_MIXES["quad"]
    sources = build_sources(sim, tenants, lambda r: None,
                            total_rate_rps=100_000.0, duration_ns=1000.0, seed=1)
    by_name = {source.tenant.name: source for source in sources}
    # Open-loop weights: alpha .4, beta .4, gamma .2; delta is closed-loop.
    assert by_name["alpha"].rate_per_ns == pytest.approx(
        by_name["beta"].rate_per_ns)
    assert by_name["alpha"].rate_per_ns == pytest.approx(
        2 * by_name["gamma"].rate_per_ns)
    assert by_name["delta"].rate_per_ns == 0.0


# --------------------------------------------------------------------------- #
# Policies (pure selection logic)
# --------------------------------------------------------------------------- #
class _FakeFabric:
    def __init__(self, sim, current_design=None):
        self.sim = sim
        self.current_design = current_design

    def estimate_service_ns(self, request):
        return float(request.size)


def _pending(*specs):
    requests = []
    for index, (accelerator, size, priority, arrival) in enumerate(specs):
        request = Request(request_id=index, tenant="t", accelerator=accelerator,
                          size=size, priority=priority)
        request.arrival_ns = arrival
        requests.append(request)
    return requests


def test_policy_factory_and_kinds():
    assert set(POLICY_KINDS) == {"fcfs", "sjf", "priority", "affinity"}
    for kind in POLICY_KINDS:
        assert make_policy(kind).kind == kind
    with pytest.raises(ValueError, match="known policies"):
        make_policy("round_robin")
    with pytest.raises(ValueError, match="patience"):
        AffinityPolicy(patience_ns=-1.0)


def test_fcfs_and_sjf_and_priority_selection():
    sim = Simulator()
    fabric = _FakeFabric(sim)
    pending = _pending(("popcount", 30, 0, 0.0), ("sort64", 5, 2, 1.0),
                       ("tangent", 10, 1, 2.0))
    assert make_policy("fcfs").select(pending, fabric) == 0
    assert make_policy("sjf").select(pending, fabric) == 1
    assert make_policy("priority").select(pending, fabric) == 1


def test_affinity_prefers_current_bitstream():
    sim = Simulator()
    fabric = _FakeFabric(sim, current_design="sort64")
    pending = _pending(("popcount", 8, 0, 0.0), ("sort64", 8, 0, 1.0))
    assert make_policy("affinity").select(pending, fabric) == 1
    # Nothing matching -> oldest.
    fabric.current_design = "tangent"
    assert make_policy("affinity").select(pending, fabric) == 0


def test_affinity_starvation_guard():
    sim = Simulator()
    fabric = _FakeFabric(sim, current_design="sort64")
    pending = _pending(("popcount", 8, 0, 0.0), ("sort64", 8, 0, 1.0))
    # Head has waited beyond patience (sim.now == 0, arrival 0 -> wait 0,
    # so shrink patience to force the guard with a fake old arrival).
    pending[0].arrival_ns = -200.0
    policy = AffinityPolicy(patience_ns=100.0)
    assert policy.select(pending, fabric) == 0


# --------------------------------------------------------------------------- #
# Scheduler / admission control
# --------------------------------------------------------------------------- #
def test_serve_config_validation():
    with pytest.raises(ValueError, match="fabric"):
        ServeConfig(num_fabrics=0, accelerators=("popcount",))
    with pytest.raises(ValueError, match="queue_capacity"):
        ServeConfig(queue_capacity=0, accelerators=("popcount",))
    with pytest.raises(ValueError, match="known policies"):
        ServeConfig(policy="lifo", accelerators=("popcount",))
    with pytest.raises(ValueError, match="accelerators"):
        FabricScheduler(Simulator(), ServeConfig())


def test_bounded_queue_sheds_load():
    outcome = run_serve("fcfs", tenant_mix="duo", arrival_rate_krps=400.0,
                        duration_us=2_000.0, queue_capacity=8)
    aggregate = aggregate_row(outcome["rows"])
    assert aggregate["shed"] > 0
    assert (aggregate["completed"] + aggregate["shed"]
            == aggregate["submitted"])
    monitor = outcome["monitor"]
    assert monitor.stats.counter("shed_total").value == aggregate["shed"]
    # Queue depth never exceeded the bound.
    assert max(monitor.queue_depth.values) <= 8


def test_unbounded_queue_never_sheds():
    outcome = run_serve("fcfs", tenant_mix="duo", arrival_rate_krps=400.0,
                        duration_us=1_000.0, queue_capacity=None)
    aggregate = aggregate_row(outcome["rows"])
    assert aggregate["shed"] == 0
    assert aggregate["completed"] == aggregate["submitted"]


def test_scheduler_charges_real_reconfiguration_cost():
    outcome = run_serve("fcfs", tenant_mix="duo", arrival_rate_krps=150.0,
                        duration_us=1_000.0)
    scheduler = outcome["scheduler"]
    fabric = scheduler.fabrics[0]
    assert fabric.reconfigurations > 0
    # Every programming went through the Control Hub's programming engine.
    assert (fabric.control_hub.stats.counter("programmings").value
            == fabric.reconfigurations)
    # The per-reconfiguration time matches the engine's transfer formula:
    # config_bits / programming_bits_per_cycle system cycles.  Starting
    # mid-cycle, wait_cycles(N) takes (N-1, N] periods.
    samples = fabric.stats.histogram("reconfig_ns").samples
    bits_per_cycle = scheduler.config.control_hub.programming_bits_per_cycle
    period_ns = scheduler.sys_domain.period_ns
    expected = {
        accelerator.name: max(1, accelerator.bitstream.config_bits // bits_per_cycle)
        for accelerator in scheduler.accelerators.values()
    }
    low = (min(expected.values()) - 1) * period_ns
    high = max(expected.values()) * period_ns
    assert all(low < sample <= high for sample in samples)


def test_fabric_clock_follows_programmed_accelerator():
    outcome = run_serve("fcfs", tenant_mix="duo", arrival_rate_krps=100.0,
                        duration_us=500.0)
    scheduler = outcome["scheduler"]
    fabric = scheduler.fabrics[0]
    current = fabric.current_design
    assert current in scheduler.accelerators
    accelerator = scheduler.accelerators[current]
    assert (fabric.clock_generator.frequency_mhz
            == pytest.approx(accelerator.fmax_mhz))
    assert fabric.clock_generator.max_mhz == pytest.approx(accelerator.fmax_mhz)


def test_multiple_fabrics_raise_throughput():
    one = aggregate_row(run_serve("fcfs", tenant_mix="duo",
                                  arrival_rate_krps=400.0, duration_us=1_500.0,
                                  num_fabrics=1)["rows"])
    two = aggregate_row(run_serve("fcfs", tenant_mix="duo",
                                  arrival_rate_krps=400.0, duration_us=1_500.0,
                                  num_fabrics=2)["rows"])
    assert two["completed"] > one["completed"]
    assert two["p99_latency_us"] < one["p99_latency_us"]


# --------------------------------------------------------------------------- #
# SLO monitor
# --------------------------------------------------------------------------- #
def test_slo_monitor_accounting():
    sim = Simulator()
    monitor = SloMonitor(sim)
    good = Request(request_id=0, tenant="t", accelerator="popcount", size=1,
                   slo_ns=100.0)
    good.arrival_ns, good.start_ns, good.finish_ns = 0.0, 10.0, 50.0
    late = Request(request_id=1, tenant="t", accelerator="popcount", size=1,
                   slo_ns=100.0)
    late.arrival_ns, late.start_ns, late.finish_ns = 0.0, 10.0, 500.0
    monitor.on_submit(good, 1)
    monitor.on_submit(late, 2)
    monitor.on_complete(good)
    monitor.on_complete(late)
    rows = monitor.tenant_rows(elapsed_ns=1_000.0)
    tenant_row = rows[0]
    assert tenant_row["tenant"] == "t"
    assert tenant_row["completed"] == 2
    assert tenant_row["slo_violations"] == 1
    # Goodput counts only the SLO-met completion: 1 per 1000 ns = 1000 krps.
    assert tenant_row["goodput_krps"] == pytest.approx(1000.0)
    assert tenant_row["throughput_krps"] == pytest.approx(2000.0)
    aggregate = rows[-1]
    assert aggregate["tenant"] == "__all__"
    assert aggregate["completed"] == 2
    with pytest.raises(ValueError, match="elapsed"):
        monitor.tenant_rows(elapsed_ns=0.0)


def test_registered_tenant_reports_zeroed_row_without_traffic():
    """Regression: a tenant whose migration blackout swallowed its whole
    epoch must still appear in the rows (zeroed), not vanish from the
    accounts — downstream merges key on the tenant column."""
    sim = Simulator()
    monitor = SloMonitor(sim)
    monitor.register("silent", slo_ns=100.0)
    request = Request(request_id=0, tenant="busy", accelerator="popcount",
                      size=1, slo_ns=100.0)
    request.arrival_ns, request.start_ns, request.finish_ns = 0.0, 1.0, 2.0
    monitor.on_submit(request, 1)
    monitor.on_complete(request)
    rows = monitor.tenant_rows(elapsed_ns=1_000.0)
    silent = next(row for row in rows if row["tenant"] == "silent")
    assert silent["submitted"] == 0
    assert silent["completed"] == 0
    assert silent["goodput_krps"] == 0.0
    # Idempotent: re-registering never resets a live account.
    account = monitor.register("busy", slo_ns=999.0)
    assert account.completed == 1
    assert account.slo_ns == 100.0


def test_tenant_rows_are_sorted_and_percentiles_monotone():
    outcome = run_serve("affinity", tenant_mix="quad", arrival_rate_krps=250.0,
                        duration_us=1_000.0)
    rows = outcome["rows"]
    names = [row["tenant"] for row in rows]
    assert names == sorted(names[:-1]) + ["__all__"]
    for row in rows:
        assert (row["p50_latency_us"] <= row["p95_latency_us"]
                <= row["p99_latency_us"])


# --------------------------------------------------------------------------- #
# Experiments
# --------------------------------------------------------------------------- #
def test_mixes_and_registry():
    assert set(MIX_NAMES) == {"mono", "duo", "quad"}
    with pytest.raises(KeyError, match="known mixes"):
        get_mix("octet")
    spec = get_experiment("serve_policy")
    assert set(spec.grid["policy"]) == set(POLICY_KINDS)
    assert get_experiment("serve_energy").fixed["tenant_mix"] == "duo"


def test_serve_policy_cell_rows_are_deterministic():
    kwargs = dict(policy="affinity", arrival_rate_krps=250.0,
                  tenant_mix="duo", duration_us=1_000.0)
    assert serve_policy_cell(**kwargs) == serve_policy_cell(**kwargs)
    assert (serve_policy_cell(**kwargs)
            != serve_policy_cell(**{**kwargs, "seed": DEFAULT_SEED + 1}))


def test_serve_policy_runner_serial_matches_process_executor():
    serial = Runner().run("serve_policy", policy=("fcfs", "affinity"),
                          arrival_rate_krps=250.0, tenant_mix="duo")
    parallel = Runner(executor="process", workers=2).run(
        "serve_policy", policy=("fcfs", "affinity"),
        arrival_rate_krps=250.0, tenant_mix="duo")
    assert serial.rows == parallel.rows
    assert serial.summary == parallel.summary
    assert parallel.stats.executor == "process"


def test_affinity_beats_fcfs_under_reconfiguration_pressure():
    """The acceptance pin: >= 2 tenants with different bitstreams on one
    fabric, offered load past FCFS's reconfiguration-thrash capacity —
    affinity must win on both p99 latency and goodput."""
    fcfs = aggregate_row(serve_policy_cell("fcfs", 250.0, "duo"))
    affinity = aggregate_row(serve_policy_cell("affinity", 250.0, "duo"))
    assert len(TENANT_MIXES["duo"]) >= 2
    # Reconfiguration pressure is real: FCFS spends most of its busy time
    # reprogramming the fabric.
    assert fcfs["reconfig_overhead"] > 0.4
    # Affinity batches same-bitstream requests: fewer reconfigurations ...
    assert affinity["reconfigurations"] < fcfs["reconfigurations"]
    # ... and wins on both headline serving metrics, with margin.
    assert affinity["p99_latency_us"] < 0.5 * fcfs["p99_latency_us"]
    assert affinity["goodput_krps"] > 1.2 * fcfs["goodput_krps"]


def test_serve_policy_summary_names_affinity():
    rows = []
    for policy in ("fcfs", "affinity"):
        rows.extend(serve_policy_cell(policy, 250.0, "duo"))
    summary = serve_policy_summary(rows)
    assert summary["best_p99_policy[duo@250krps]"] == "affinity"
    assert summary["affinity_p99_vs_fcfs[duo@250krps]"] < 1.0
    assert summary["affinity_goodput_vs_fcfs[duo@250krps]"] > 1.0


def test_serve_energy_cell_reports_energy_per_request():
    rows = serve_energy_cell("affinity", duration_us=1_000.0)
    assert len(rows) == 1
    row = rows[0]
    assert row["tenant"] == "__all__"
    assert row["energy_nj"] > 0
    assert row["energy_per_request_nj"] > 0
    assert row["avg_power_mw"] > 0
    assert row["e_fpga_nj"] > 0
    # Deterministic too.
    assert rows == serve_energy_cell("affinity", duration_us=1_000.0)


def test_energy_accounting_does_not_change_timing():
    with_power = run_serve("affinity", tenant_mix="duo",
                           arrival_rate_krps=250.0, duration_us=1_000.0,
                           power=True)
    without = run_serve("affinity", tenant_mix="duo",
                        arrival_rate_krps=250.0, duration_us=1_000.0,
                        power=False)
    keys = ("submitted", "completed", "shed", "p99_latency_us",
            "goodput_krps", "reconfigurations")
    for key in keys:
        assert (aggregate_row(with_power["rows"])[key]
                == aggregate_row(without["rows"])[key])


def test_energy_accounting_requires_single_fabric():
    with pytest.raises(ValueError, match="one fabric"):
        run_serve("fcfs", tenant_mix="duo", arrival_rate_krps=100.0,
                  duration_us=500.0, num_fabrics=2, power=True)
