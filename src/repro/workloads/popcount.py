"""Popcount benchmark (Dolly-P1M1, fine-grained acceleration).

Counts the set bits of a batch of 512-bit vectors resident in coherent
memory.  The processor-only baseline walks each vector byte by byte with a
lookup table (the Ariane core has no BitManip extension); the accelerated
versions pass the vector index through an FPGA-bound FIFO and let the
accelerator stream the four cache lines through its Memory Hub.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.accel.popcount import (
    PopcountAccelerator,
    REG_BASE_ADDR,
    REG_COMMAND,
    REG_RESULT,
    REG_STRIDE,
    STOP_COMMAND,
    VECTOR_BYTES,
    register_layout,
)
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

DEFAULT_VECTORS = 24
WORD_BYTES = 8
#: Per-byte cost of the software byte-lookup loop (shift, mask, table load, add).
BYTE_LOOKUP_OPS = 4


def _make_vectors(count: int, seed: int) -> List[List[int]]:
    rng = random.Random(seed)
    return [
        [rng.getrandbits(64) for _ in range(VECTOR_BYTES // WORD_BYTES)]
        for _ in range(count)
    ]


def _expected_counts(vectors: List[List[int]]) -> List[int]:
    return [sum(bin(word).count("1") for word in vector) for vector in vectors]


def _store_vectors(system, base: int, vectors: List[List[int]]) -> None:
    for vector_index, vector in enumerate(vectors):
        for word_index, word in enumerate(vector):
            system.memory.write_word(base + vector_index * VECTOR_BYTES + word_index * WORD_BYTES, word)


def run_cpu(params: Optional[WorkloadParams] = None, vectors: int = DEFAULT_VECTORS) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    data = _make_vectors(vectors, params.seed)
    base = system.memory.allocate(vectors * VECTOR_BYTES, align=64)
    _store_vectors(system, base, data)
    # The baseline starts with a warm cache (Sec. V-A).
    system.warm_cache(0, base, vectors * VECTOR_BYTES)
    expected = _expected_counts(data)
    counts: List[int] = []

    def program(ctx):
        table_penalty = BYTE_LOOKUP_OPS
        for vector_index in range(vectors):
            count = 0
            for word_index in range(VECTOR_BYTES // WORD_BYTES):
                word = yield from ctx.load(base + vector_index * VECTOR_BYTES + word_index * WORD_BYTES)
                # Byte lookup: 8 bytes per word, a few ops per byte.
                yield from ctx.compute(8 * table_penalty)
                count += bin(word).count("1")
            counts.append(count)
        return len(counts)

    _, elapsed = system.run_single(program)
    return finalize_result(
        "popcount", SystemKind.CPU_ONLY, system, elapsed,
        correct=counts == expected, checksum=sum(counts),
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    vectors: int = DEFAULT_VECTORS) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=1, num_memory_hubs=1)
    system = build_benchmark_system(kind, params)
    accelerator = PopcountAccelerator()
    synthesis = system.install_accelerator(
        accelerator, registers=register_layout(), fpga_mhz=params.fpga_mhz
    )
    system.start_accelerator()
    adapter = system.adapter
    data = _make_vectors(vectors, params.seed)
    base = system.memory.allocate(vectors * VECTOR_BYTES, align=64)
    _store_vectors(system, base, data)
    expected = _expected_counts(data)
    counts: List[int] = []

    def program(ctx):
        yield from ctx.mmio_write(adapter.register_addr(REG_BASE_ADDR), base)
        yield from ctx.mmio_write(adapter.register_addr(REG_STRIDE), VECTOR_BYTES)
        for vector_index in range(vectors):
            yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), vector_index)
            count = yield from ctx.mmio_read(adapter.register_addr(REG_RESULT))
            counts.append(count)
        yield from ctx.mmio_write(adapter.register_addr(REG_COMMAND), STOP_COMMAND)
        return len(counts)

    _, elapsed = system.run_single(program)
    return finalize_result(
        "popcount", kind, system, elapsed,
        correct=counts == expected, checksum=sum(counts),
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz},
    )


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        vectors: int = DEFAULT_VECTORS) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, vectors)
    return run_accelerated(kind, params, vectors)
