"""Soft register declarations.

An accelerator's software interface is a small bank of registers exposed via
on-chip MMIOs.  Each register is either a *normal* soft register (emulated
inside the eFPGA; every processor access pays the clock-domain crossing) or
one of the four *Shadow Register* types of Sec. II-F that live in the fast
clock domain:

* ``PLAIN`` — keeps the last written value; ideal for passing constants.
* ``FPGA_BOUND_FIFO`` — records processor writes, read in order by the eFPGA.
* ``CPU_BOUND_FIFO`` — records accelerator pushes; processor reads block
  until data is available (or the access times out).
* ``TOKEN_FIFO`` — dataless, non-blocking; a processor read consumes a token
  or returns "empty", emulating ``try_join``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class RegisterKind(enum.Enum):
    """Soft register flavours (Sec. II-E / II-F)."""

    NORMAL = "normal"
    PLAIN = "plain"
    FPGA_BOUND_FIFO = "fpga_bound_fifo"
    CPU_BOUND_FIFO = "cpu_bound_fifo"
    TOKEN_FIFO = "token_fifo"

    @property
    def is_shadowed(self) -> bool:
        return self is not RegisterKind.NORMAL


@dataclass(frozen=True)
class RegisterSpec:
    """One register in an accelerator's software interface."""

    index: int
    kind: RegisterKind
    name: str = ""
    #: FIFO depth for the FIFO kinds (ignored for PLAIN / NORMAL).
    depth: int = 8

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("register index must be non-negative")
        if self.depth < 1:
            raise ValueError("register FIFO depth must be >= 1")

    def downgraded(self) -> "RegisterSpec":
        """The FPSoC baseline downgrades every shadowed register to NORMAL."""
        if self.kind is RegisterKind.NORMAL:
            return self
        return RegisterSpec(index=self.index, kind=RegisterKind.NORMAL, name=self.name,
                            depth=self.depth)


@dataclass
class RegisterLayout:
    """A validated collection of register specs keyed by index and name."""

    specs: List[RegisterSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        indices = [spec.index for spec in self.specs]
        if len(indices) != len(set(indices)):
            raise ValueError("duplicate register indices in layout")
        names = [spec.name for spec in self.specs if spec.name]
        if len(names) != len(set(names)):
            raise ValueError("duplicate register names in layout")

    def by_index(self) -> Dict[int, RegisterSpec]:
        return {spec.index: spec for spec in self.specs}

    def by_name(self, name: str) -> RegisterSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no register named {name!r}")

    def downgraded(self) -> "RegisterLayout":
        return RegisterLayout([spec.downgraded() for spec in self.specs])

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)
