"""The performance harness: timed benchmark runs, a stable JSON schema and
baseline comparison.

Every benchmark is a :class:`BenchSpec` — a name, a callable returning a
scalar, a unit, and a direction (``higher`` for throughputs, ``lower`` for
wall times).  :func:`run_suite` executes a list of specs with repeats and
returns a report dict in the ``duet-repro/bench-kernel/v1`` schema, which
:func:`write_report` serializes to ``BENCH_kernel.json``.
:func:`compare_reports` diffs a fresh report against a committed baseline
and flags regressions beyond a tolerance — that comparison is what the CI
perf smoke job gates on.  See ``docs/performance.md`` for the schema and
workflow.
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Bump only when the report layout changes incompatibly.
SCHEMA = "duet-repro/bench-kernel/v1"

#: Whether this interpreter is PyPy.  The perf suite runs fine under PyPy,
#: but the machine calibration (raw generator-send throughput) is a
#: CPython-specific proxy: under a tracing JIT the send loop gets compiled
#: to a few machine instructions and stops tracking how fast the *suite*
#: runs, so on PyPy the calibration is skipped and reports carry
#: ``calibration_sends_per_sec: null`` (comparisons then fall back to raw,
#: uncalibrated ratios — only meaningful against a same-interpreter
#: baseline).
IS_PYPY = "__pypy__" in sys.builtin_module_names


def interpreter_info() -> Dict[str, str]:
    """Implementation + version of the running interpreter.

    Recorded in every ``BENCH_*.json`` so a baseline from one interpreter
    is never silently compared against a run from another.
    """
    return {
        "implementation": platform.python_implementation().lower(),
        "version": platform.python_version(),
    }

#: Default regression tolerance (fraction of the baseline value).
DEFAULT_TOLERANCE = 0.2

#: Benchmarks that fail a gated comparison when they regress: the kernel
#: headline number, the batched-NoC 8x8 mesh microbenchmark, the same NoC
#: workload with the energy-accounting hooks live — gating that one is
#: what keeps the power layer's hot-path cost near zero — the serving
#: subsystem's end-to-end request rate, the same serving workload with a
#: live repro.obs tracer (the lifecycle hooks' hot-path cost, same idea
#: as the NoC hooks-on gate), the duo workload on a 4-region grid
#: (allocator + partial programming on the hot path), the fleet layer's
#: cluster-wide request rate, the same fleet workload with live telemetry
#: windows and alert evaluation attached (the monitor-on cost — same idea
#: as the tracing-on gate), and the fleet path under injected faults with
#: recovery on (failover, spare promotion and replay included).
DEFAULT_GATES = ("kernel_events_per_sec", "noc_messages_per_sec",
                 "noc_messages_per_sec_hooks_on", "serve_requests_per_sec",
                 "serve_requests_per_sec_tracing_on",
                 "reconfig_requests_per_sec", "fleet_requests_per_sec",
                 "fleet_requests_per_sec_monitor_on",
                 "chaos_requests_per_sec")


@dataclass
class BenchSpec:
    """One benchmark: a callable measured ``repeats`` times."""

    name: str
    fn: Callable[..., float]
    unit: str
    #: ``higher`` = throughput-style (bigger is better), ``lower`` = latency.
    direction: str = "higher"
    #: Keyword arguments forwarded to ``fn`` (recorded in the report).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Parameter overrides applied in ``--quick`` mode.
    quick_params: Dict[str, Any] = field(default_factory=dict)
    repeats: int = 3
    quick_repeats: int = 2

    def run(self, quick: bool = False) -> Dict[str, Any]:
        params = dict(self.params)
        if quick:
            params.update(self.quick_params)
        repeats = self.quick_repeats if quick else self.repeats
        samples = [float(self.fn(**params)) for _ in range(repeats)]
        best = max(samples) if self.direction == "higher" else min(samples)
        return {
            "name": self.name,
            "unit": self.unit,
            "direction": self.direction,
            "value": best,
            "samples": samples,
            "repeats": repeats,
            "params": params,
        }


def machine_calibration(sends: int = 200_000, repeats: int = 3) -> Optional[float]:
    """Raw generator-resume throughput of this interpreter/machine.

    The kernel's hot path is dominated by pure-Python bytecode and
    generator sends, so this number tracks how fast the host can run the
    suite at all.  Reports carry it, and :func:`compare_reports` divides
    each benchmark by it before comparing — which is what makes a baseline
    recorded on one machine meaningful on another (e.g. a CI runner).

    Returns ``None`` on PyPy (see :data:`IS_PYPY`): the JIT compiles the
    calibration loop away, so the number would wildly overstate how much
    faster PyPy runs the real suite.
    """
    if IS_PYPY:
        return None

    def spin():
        while True:
            yield None

    best = 0.0
    for _ in range(repeats):
        generator = spin()
        send = generator.send
        send(None)  # prime
        start = time.perf_counter()
        for _ in range(sends):
            send(None)
        elapsed = time.perf_counter() - start
        best = max(best, sends / elapsed)
    return best


def run_suite(specs: Sequence[BenchSpec], quick: bool = False,
              progress: Optional[Callable[[str], None]] = None) -> Dict[str, Any]:
    """Run every spec and assemble a schema-stable report."""
    if progress is not None:
        progress("calibrating machine speed ..." if not IS_PYPY
                 else "PyPy detected: skipping CPython calibration ...")
    calibration = machine_calibration()
    benchmarks = []
    for spec in specs:
        if progress is not None:
            progress(f"running {spec.name} ...")
        benchmarks.append(spec.run(quick=quick))
    return {
        "schema": SCHEMA,
        "created_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "interpreter": interpreter_info(),
        "mode": "quick" if quick else "full",
        "calibration_sends_per_sec": calibration,
        "benchmarks": benchmarks,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown benchmark schema {report.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return report


@dataclass
class Comparison:
    """Outcome of comparing one benchmark against the baseline."""

    name: str
    baseline: float
    current: float
    ratio: float          # current / baseline (in the "goodness" sense)
    regressed: bool
    gated: bool


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE,
                    gates: Sequence[str] = DEFAULT_GATES) -> List[Comparison]:
    """Compare two reports benchmark-by-benchmark.

    ``ratio`` is normalized so that > 1 is always an improvement.  When
    both reports carry a machine calibration, each value is divided by its
    report's calibration first, so a baseline recorded on a fast dev box
    gates correctly on a slower CI runner (only the *relative* kernel
    overhead matters).  PyPy reports carry no calibration (see
    :data:`IS_PYPY`), so comparisons involving one degrade to raw ratios —
    only meaningful against a baseline from the same interpreter.  A
    benchmark *regresses* when its goodness falls below ``1 - tolerance``;
    only benchmarks named in ``gates`` make :func:`has_gated_regression`
    fail (wall-time benches are informational — too noisy to gate CI on).
    """
    current_cal = current.get("calibration_sends_per_sec")
    baseline_cal = baseline.get("calibration_sends_per_sec")
    scale = (baseline_cal / current_cal
             if current_cal and baseline_cal else 1.0)
    by_name = {bench["name"]: bench for bench in baseline.get("benchmarks", ())}
    comparisons: List[Comparison] = []
    for bench in current.get("benchmarks", ()):
        base = by_name.get(bench["name"])
        if base is None or not base.get("value"):
            continue
        if bench.get("params") != base.get("params"):
            # Different problem sizes (e.g. a --quick wall-time bench vs a
            # full-mode baseline) — a ratio would be meaningless and could
            # mask a real regression behind a smaller workload.
            continue
        value, base_value = bench["value"], base["value"]
        if bench.get("direction", "higher") == "higher":
            ratio = value * scale / base_value
        else:
            ratio = base_value * scale / value if value else 0.0
        comparisons.append(Comparison(
            name=bench["name"],
            baseline=base_value,
            current=value,
            ratio=ratio,
            regressed=ratio < (1.0 - tolerance),
            gated=bench["name"] in gates,
        ))
    return comparisons


def has_gated_regression(comparisons: Sequence[Comparison]) -> bool:
    return any(c.regressed and c.gated for c in comparisons)


def format_comparisons(comparisons: Sequence[Comparison]) -> str:
    lines = [f"{'benchmark':<34} {'baseline':>14} {'current':>14} {'ratio':>7}  status"]
    for c in comparisons:
        status = "OK"
        if c.regressed:
            status = "REGRESSED" if c.gated else "regressed (not gated)"
        elif c.ratio > 1.05:
            status = "improved"
        lines.append(
            f"{c.name:<34} {format(c.baseline, ',.6g'):>14} "
            f"{format(c.current, ',.6g'):>14} {c.ratio:>6.2f}x  {status}"
        )
    return "\n".join(lines)


def time_wall(fn: Callable[[], Any]) -> float:
    """Wall-clock one call of ``fn`` (helper for end-to-end benches)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main_info() -> Dict[str, str]:  # pragma: no cover - trivial
    return {"python": sys.version, "platform": platform.platform()}
