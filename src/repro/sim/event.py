"""One-shot simulation events.

An :class:`Event` is the rendezvous primitive of the kernel: processes wait
on it by yielding it, and any component may trigger it exactly once with an
optional value.  Triggering enqueues the waiters on the simulator's
immediate deque at the current simulation time — bypassing the time heap —
while preserving the order in which they registered.

Events can also *fail* (:meth:`Event.fail`): waiting processes then get the
exception thrown into their generator at the yield point instead of
receiving it as a value, which makes failure propagation explicit.  Plain
callbacks registered with :meth:`add_callback` are invoked with the
exception as their argument in that case; check :attr:`Event.ok` when that
distinction matters.
"""

from __future__ import annotations

from typing import Any, Callable, List


class Event:
    """A one-shot event carrying an optional value.

    Events are created through :meth:`repro.sim.Simulator.event` so that they
    know which simulator to schedule their callbacks on.

    Internally the waiter list mixes two kinds of entries: plain callables
    (from :meth:`add_callback`) and ``(resume, throw, resume_entry)``
    tuples (from :meth:`add_waiter`, used by the kernel for waiting
    processes; the third slot is a ready-made value-less deque entry).
    """

    __slots__ = ("sim", "name", "_callbacks", "_triggered", "_failed", "value")

    def __init__(self, sim: "Simulator", name: str = "") -> None:  # noqa: F821
        self.sim = sim
        self.name = name
        self._callbacks: List[Any] = []
        self._triggered = False
        self._failed = False
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has already been called."""
        return self._triggered

    @property
    def failed(self) -> bool:
        """Whether the event was triggered via :meth:`fail`."""
        return self._failed

    @property
    def ok(self) -> bool:
        """Triggered successfully (i.e. carries a result, not an exception)."""
        return self._triggered and not self._failed

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to every waiter.

        Waiters run at the current simulation time, in registration order,
        directly off the immediate deque (no heap round-trip); triggering an
        already-triggered event is an error because events are one-shot.
        """
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks:
            immediate = self.sim._immediate
            if value is None:
                # Process waiters carry a ready-made value-less deque entry
                # (their third slot) — the hot channel/NoC hand-off wakeup
                # allocates nothing at all.
                for entry in callbacks:
                    immediate.append(entry[2] if type(entry) is tuple
                                     else (entry, None))
            else:
                for entry in callbacks:
                    immediate.append((entry[0], value) if type(entry) is tuple
                                     else (entry, value))
            callbacks.clear()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as *failed*, propagating ``exception``.

        Waiting processes get ``exception`` thrown into their generator at
        the yield point; plain callbacks receive it as their argument.
        """
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError(f"Event.fail needs an exception, got {exception!r}")
        self._triggered = True
        self._failed = True
        self.value = exception
        callbacks = self._callbacks
        if callbacks:
            immediate = self.sim._immediate
            for entry in callbacks:
                immediate.append(
                    (entry[1] if type(entry) is tuple else entry, exception)
                )
            callbacks.clear()
        return self

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; runs immediately if already triggered."""
        if self._triggered:
            self.sim._immediate.append((callback, self.value))
        else:
            self._callbacks.append(callback)

    def add_waiter(self, process: Any) -> None:
        """Register a waiting :class:`~repro.sim.kernel.Process` (kernel use).

        On success the process is resumed with the event's value; on failure
        the exception is thrown into it.
        """
        if self._triggered:
            pair = process._waiter_pair
            callback = pair[1] if self._failed else pair[0]
            self.sim._immediate.append((callback, self.value))
        else:
            self._callbacks.append(process._waiter_pair)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._triggered:
            state = "pending"
        else:
            state = "failed" if self._failed else "triggered"
        return f"<Event {self.name or hex(id(self))} {state}>"


class EventGroup:
    """Waits for a set of events; triggers its own event when all are done."""

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:  # noqa: F821
        self.done = Event(sim, name="group-done")
        self._remaining = len(events)
        self._values: List[Any] = [None] * len(events)
        if self._remaining == 0:
            self.done.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Any], None]:
        def _on_done(value: Any) -> None:
            self._values[index] = value
            self._remaining -= 1
            if self._remaining == 0:
                self.done.succeed(list(self._values))

        return _on_done


def all_of(sim: "Simulator", events: List[Event]) -> Event:  # noqa: F821
    """Return an event triggered when every event in ``events`` has fired."""
    return EventGroup(sim, events).done
