"""One simulated Dolly serving node: a PR 5 deployment behind a fleet.

A *node* is an independent Dolly system serving its assigned tenants — a
:class:`~repro.serve.scheduler.FabricScheduler` with ``fabrics`` eFPGA
fabrics, its own simulation kernel, its own traffic sources and its own
SLO accounting.  Nodes are deliberately *share-nothing*: one node's
simulation reads only its :class:`NodeSpec`, its tenant assignments and a
seed derived arithmetically from ``(seed, node_id, epoch)``, which is what
lets the cluster layer fan node simulations out over a process pool and
still merge results bit-identically to a serial run (sorted by node id; see
``docs/fleet.md``).

Nodes may be heterogeneous — the INFN Tier-1 elastic-extension framing of
the fleet experiments (PAPERS.md, arXiv:2006.14603): a remote pool whose
machines differ in fabric count, clock and cost.  :attr:`NodeSpec.fabrics`,
:attr:`NodeSpec.fpga_mhz`, :attr:`NodeSpec.system_mhz` and
:attr:`NodeSpec.cost_weight` capture that; the placement policies normalize
load by fabric count so a 2-fabric node absorbs twice the traffic.

A tenant that *migrates* onto a node (the router re-placed it) pays a real
cost before its stream starts there: the target fabric must be programmed
from scratch (``config_bits / programming_bits_per_cycle`` system cycles,
exactly what :meth:`~repro.core.control_hub.ControlHub.program` charges)
plus a state-transfer stall.  The stall is applied as the traffic source's
``start_delay_ns``, so a migration shows up where it hurts: requests that
would have arrived during the blackout never get served there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import random

from repro.core.control_hub import program_cycles
from repro.serve.catalog import resolve_accelerator
from repro.serve.scheduler import FabricScheduler, ServeConfig
from repro.serve.slo import SloMonitor
from repro.serve.traffic import Request, TenantSpec, TrafficSource
from repro.sim import Delay, Simulator

#: Fixed state-transfer component of a tenant migration (ns): shipping the
#: tenant's context (queue snapshot, accelerator state) to the target node.
DEFAULT_STATE_TRANSFER_NS = 25_000.0


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one fleet node (possibly heterogeneous)."""

    node_id: int
    #: eFPGA fabrics on this node (the PR 5 scheduler drives all of them).
    fabrics: int = 1
    system_mhz: float = 1000.0
    #: Service clock cap; ``None`` runs each accelerator at its own Fmax.
    fpga_mhz: Optional[float] = None
    #: Relative cost of one node-second (heterogeneous pricing/power class).
    cost_weight: float = 1.0
    #: Hot spare: powered on (it burns cost/energy every epoch) but excluded
    #: from placement until chaos recovery promotes it to replace a dead node.
    spare: bool = False

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id cannot be negative, got {self.node_id}")
        if self.fabrics < 1:
            raise ValueError(f"need >= 1 fabric, got {self.fabrics}")
        if self.system_mhz <= 0:
            raise ValueError(f"system_mhz must be positive, got {self.system_mhz}")
        if self.cost_weight <= 0:
            raise ValueError(f"cost_weight must be positive, got {self.cost_weight}")

    @property
    def name(self) -> str:
        return f"node{self.node_id}"


@dataclass(frozen=True)
class TenantShare:
    """One tenant's assignment onto a node for one epoch."""

    tenant: TenantSpec
    #: Offered open-loop rate for this epoch (closed loops pace themselves).
    rate_rps: float
    #: True when the router moved the tenant here this epoch (pays a stall).
    migrated: bool = False

    def load_proxy(self) -> float:
        """Dimensionless offered-load estimate used by placement policies.

        Rate times the catalog's mean service cycles — clock-free on
        purpose, since placement happens before any node is simulated.
        """
        spec = resolve_accelerator(self.tenant.accelerator)
        mean_size = (self.tenant.size_min + self.tenant.size_max) / 2.0
        return self.rate_rps * spec.service_cycles(int(mean_size))


def node_seed(seed: int, node_id: int, epoch: int) -> int:
    """Per-(node, epoch) RNG stream base, mixed arithmetically.

    No ``hash()`` anywhere (PYTHONHASHSEED-independence); the multipliers
    are distinct odd constants so streams for neighbouring nodes/epochs
    share no structure.  Tenant identity is mixed in later by
    :meth:`TenantSpec.rng_seed` via CRC-32.
    """
    return (seed * 1_000_003 + node_id * 7_919 + epoch * 104_729) & 0x7FFFFFFF


def migration_stall_ns(scheduler: FabricScheduler, accelerator: str,
                       system_mhz: float,
                       state_transfer_ns: float = DEFAULT_STATE_TRANSFER_NS) -> float:
    """The blackout a migrated tenant pays before serving on a new node:
    one full bitstream program at the node's system clock plus the fixed
    state-transfer cost."""
    bitstream = scheduler.accelerators[accelerator].bitstream
    cycles = program_cycles(
        bitstream.config_bits,
        scheduler.config.control_hub.programming_bits_per_cycle,
    )
    return cycles * 1000.0 / system_mhz + state_transfer_ns


def _attach_node_energy(sim: Simulator, scheduler: FabricScheduler):
    """One :class:`EnergyModel` per fabric (each tracks its own eFPGA clock
    domain); the node's energy is their sum."""
    from repro.power.model import EnergyModel, PowerConfig

    area_mm2 = max(accelerator.synthesis.area_mm2
                   for accelerator in scheduler.accelerators.values())
    models = []
    for fabric in scheduler.fabrics:
        energy = EnergyModel(PowerConfig(enabled=True), sim,
                             name=f"{fabric.name}.energy")
        energy.sys_domain = scheduler.sys_domain
        energy.fpga_domain = fabric.clock_generator.fpga_domain
        energy.num_tiles = 1
        energy.set_efpga_area(area_mm2)
        fabric.energy = energy
        models.append(energy)
    return models


def _replay_burst(sim: Simulator, scheduler: FabricScheduler,
                  tenant: TenantSpec, count: int, seed: int,
                  start_delay_ns: float, start_id: int):
    """Re-offer ``count`` requests a dead node lost for ``tenant``.

    The burst arrives right after the tenant's migration blackout on its
    new node, back-to-back (the router replays its retained queue).  Sizes
    come from a dedicated stream (``stream=7``) of the tenant's seeded RNG,
    so the burst never perturbs the tenant's regular arrival draws.
    """
    rng = random.Random(tenant.rng_seed(seed, stream=7))
    if start_delay_ns > 0:
        yield Delay(start_delay_ns)
    for offset in range(count):
        request = Request(
            request_id=start_id + offset,
            tenant=tenant.name,
            accelerator=tenant.accelerator,
            size=rng.randint(tenant.size_min, tenant.size_max),
            priority=tenant.priority,
            slo_ns=tenant.slo_ns,
        )
        if scheduler.submit(request):
            # Surfaces in the tenant's ``replayed`` column: the request is a
            # re-offer of one a dead node lost, not organic arrival.
            scheduler.monitor.on_replay(request, len(scheduler.pending))
    return count


def simulate_node(
    node: NodeSpec,
    shares: Tuple[TenantShare, ...],
    policy: str,
    epoch_ns: float,
    epoch: int,
    seed: int,
    queue_capacity: Optional[int] = 64,
    patience_ns: float = 100_000.0,
    state_transfer_ns: float = DEFAULT_STATE_TRANSFER_NS,
    power: bool = False,
    max_events: int = 20_000_000,
    chaos_events: Tuple[Any, ...] = (),
    chaos_recovery: bool = True,
    failed_fabrics: Tuple[int, ...] = (),
    replays: Tuple[Tuple[str, int], ...] = (),
    telemetry_window_us: Optional[float] = None,
) -> Dict[str, Any]:
    """Simulate one node for one epoch; returns a picklable report dict.

    The report carries per-tenant accounting (including raw latency samples
    so the cluster can merge exact percentiles), the node-level signals the
    router and autoscaler react to (time-weighted queue depth, busy
    fraction, shed counts) and — with ``power=True`` — the node's energy.
    Everything is a plain dict/list/float so a
    ``ProcessPoolExecutor`` ships it back without custom reducers.

    Chaos inputs are plain data computed by the *parent* (see
    ``docs/chaos.md``): ``chaos_events`` are this (node, epoch)'s resolved
    :class:`~repro.chaos.FaultEvent` draws, ``failed_fabrics`` carries
    fabric indices that died permanently in earlier epochs, and ``replays``
    re-offers requests a dead node lost, as an epoch-start burst per tenant.
    The faults a node sees therefore never depend on which process simulates
    it — the serial ≡ process identity holds under injection.

    ``telemetry_window_us`` attaches a tumbling-window
    :class:`~repro.obs.monitor.TelemetryMonitor`; the report gains a
    ``"telemetry"`` key (stream in dict form, timestamps already on the
    global fleet timeline) only when enabled, so monitor-off reports keep
    their exact shape.
    """
    sim = Simulator()
    config = ServeConfig(
        policy=policy,
        num_fabrics=node.fabrics,
        system_mhz=node.system_mhz,
        fpga_mhz=node.fpga_mhz,
        queue_capacity=queue_capacity,
        patience_ns=patience_ns,
        accelerators=tuple(dict.fromkeys(
            share.tenant.accelerator for share in shares)) or ("popcount",),
    )
    monitor = SloMonitor(sim, name=node.name)
    scheduler = FabricScheduler(sim, config, monitor=monitor)
    telemetry = None
    if telemetry_window_us is not None:
        from repro.obs.monitor import TelemetryMonitor

        telemetry = TelemetryMonitor(
            monitor, telemetry_window_us * 1000.0, node_id=node.node_id,
            epoch=epoch, t0_ps=epoch * int(round(epoch_ns * 1000.0)))
        scheduler.attach_telemetry(telemetry)
    energy_models = _attach_node_energy(sim, scheduler) if power else []

    chaos_engaged = bool(chaos_events) or bool(failed_fabrics) or bool(replays)
    if chaos_engaged:
        scheduler.recovery = chaos_recovery
        # Damage carried over from earlier epochs: dead before t=0, no new
        # fault window opens (the impact was accounted when it happened).
        for index in failed_fabrics:
            if 0 <= index < len(scheduler.fabrics):
                scheduler.fabrics[index].fail(reason="carryover")
        if chaos_events:
            from repro.chaos import FaultInjector

            FaultInjector(sim, scheduler, chaos_events,
                          recovery=chaos_recovery)

    migrations = 0
    stall_ns_total = 0.0
    sources = []
    for index, share in enumerate(shares):
        stall = 0.0
        if share.migrated:
            stall = migration_stall_ns(scheduler, share.tenant.accelerator,
                                       node.system_mhz, state_transfer_ns)
            migrations += 1
            stall_ns_total += stall
        # Pre-register so a tenant whose blackout swallows the whole epoch
        # still reports a (zeroed) row instead of silently vanishing.
        monitor.register(share.tenant.name, share.tenant.slo_ns)
        sources.append(TrafficSource(
            sim, share.tenant, scheduler.submit, share.rate_rps,
            duration_ns=epoch_ns,
            seed=node_seed(seed, node.node_id, epoch),
            start_id=(epoch * len(shares) + index) * 1_000_000,
            start_delay_ns=stall,
        ))
    processes = [process for source in sources for process in source.start()]
    if replays:
        share_by_name = {share.tenant.name: (index, share)
                         for index, share in enumerate(shares)}
        for name, count in replays:
            if name not in share_by_name or count < 1:
                continue
            index, share = share_by_name[name]
            stall = (migration_stall_ns(scheduler, share.tenant.accelerator,
                                        node.system_mhz, state_transfer_ns)
                     if share.migrated else 0.0)
            processes.append(sim.process(
                _replay_burst(sim, scheduler, share.tenant, count,
                              node_seed(seed, node.node_id, epoch), stall,
                              start_id=(epoch * len(shares) + index)
                              * 1_000_000 + 500_000),
                name=f"{node.name}.replay.{name}"))

    def supervisor():
        for process in processes:
            if not process.finished:
                yield process
        scheduler.close()

    sim.process(supervisor(), name=f"{node.name}.supervisor")
    for model in energy_models:
        model.begin_window()
    sim.run(max_events=max_events)
    if chaos_engaged:
        scheduler.flush_pending()
    elapsed_ns = max(sim.now, epoch_ns)
    for model in energy_models:
        model.end_window()

    tenants: Dict[str, Dict[str, Any]] = {}
    for name in sorted(monitor.accounts):
        account = monitor.accounts[name]
        tenants[name] = {
            "submitted": account.submitted,
            "completed": account.completed,
            "shed": account.shed,
            "good": account.good,
            "slo_violations": account.slo_violations,
            "slo_ns": account.slo_ns,
            "service_ns_total": account.service_ns_total,
            "queue_wait_ns_total": account.queue_wait_ns_total,
            "latency_samples": list(monitor.latency_histogram(name).samples),
            "fault_shed": account.fault_shed,
            "replayed": account.replayed,
            "recovery_time_ns": account.recovery_time_ns,
        }

    totals = scheduler.fabric_totals()
    busy_ns = (totals["service_us_total"] + totals["reconfig_us_total"]) * 1000.0
    # Unified metrics (repro.obs): the node's registries — scheduler fault
    # counters + SLO StatSet — as one snapshot, shipped in dict form (the
    # report is plain JSON data by contract).  Gauges carry the steering
    # signals so a fleet-level snapshot merge can reason about peaks
    # without re-reading every report.
    from repro.obs.metrics import MetricsSnapshot

    scheduler.metrics.gauge("queue_depth_mean").set(
        monitor.queue_depth.time_weighted_mean())
    scheduler.metrics.gauge("busy_fraction").set(
        busy_ns / (node.fabrics * elapsed_ns) if elapsed_ns else 0.0)
    if queue_capacity is not None:
        # Admission-queue free-slot low-water mark.  A *min*-merge gauge:
        # the fleet-wide value is the worst node's headroom, which a
        # max merge would silently report as the best node's.
        peak_depth = max(monitor.queue_depth.values, default=0.0)
        scheduler.metrics.gauge("free_capacity", mode="min").set(
            queue_capacity - peak_depth)
    metrics = MetricsSnapshot.merged(
        (scheduler.metrics.snapshot(), monitor.metrics.snapshot())).as_dict()
    energy_pj = sum(model.last_window_pj or 0.0 for model in energy_models)
    breakdown: Dict[str, float] = {}
    for model in energy_models:
        for domain, pj in model.last_window_breakdown.items():
            breakdown[domain] = breakdown.get(domain, 0.0) + pj
    if telemetry is not None:
        telemetry.finalize(elapsed_ns)
    report_extra: Dict[str, Any] = (
        {"telemetry": telemetry.stream.as_dict()} if telemetry is not None else {})
    return {
        **report_extra,
        "node_id": node.node_id,
        "epoch": epoch,
        "fabrics": node.fabrics,
        "cost_weight": node.cost_weight,
        "elapsed_ns": elapsed_ns,
        "tenants": tenants,
        # -- signals the router/autoscaler steer on --------------------- #
        "queue_depth_mean": monitor.queue_depth.time_weighted_mean(),
        "busy_fraction": busy_ns / (node.fabrics * elapsed_ns) if elapsed_ns else 0.0,
        "submitted": sum(t["submitted"] for t in tenants.values()),
        "completed": sum(t["completed"] for t in tenants.values()),
        "shed": sum(t["shed"] for t in tenants.values()),
        # -- accounting -------------------------------------------------- #
        "reconfigurations": totals["reconfigurations"],
        "reconfig_us_total": totals["reconfig_us_total"],
        "service_us_total": totals["service_us_total"],
        "migrations": migrations,
        "migration_stall_ns": stall_ns_total,
        "metrics": metrics,
        "energy_pj": energy_pj,
        "energy_breakdown": breakdown,
        # -- chaos (empty/zeroed unless this epoch engaged faults) -------- #
        "spare": node.spare,
        "chaos": {
            "faults_injected": scheduler.fault_stats["faults_injected"],
            "fabric_faults": scheduler.fault_stats["fabric_faults"],
            "requests_lost": scheduler.fault_stats["requests_lost"],
            "replayed": scheduler.fault_stats["replayed"],
            "fault_shed": scheduler.fault_stats["fault_shed"],
            "seu_scrubs": scheduler.fault_stats["seu_scrubs"],
            "link_faults": scheduler.fault_stats["link_faults"],
            #: Fabric indices still dead at epoch end (permanent damage the
            #: cluster carries into the next epoch as ``failed_fabrics``).
            "dead_fabrics": sorted(
                fabric.index for fabric in scheduler.fabrics if fabric.failed),
        } if chaos_engaged else None,
    }
