"""Barnes-Hut benchmark (Dolly-P4M1, fine-grained acceleration).

One force-calculation step of a 2-D Barnes-Hut N-body simulation.  The tree
(a quadtree) is built in software and laid out in coherent memory; the
measured phase computes the net force on every particle, parallelized
across four processors.  The baseline evaluates the monopole approximation
(``ApproxForce``) and the exact pairwise kernel (``CalcForce``) in software;
the accelerated versions offload both kernels to the pipelined soft
accelerators, which the four threads time-multiplex (Fig. 7).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.accel.barnes_hut import (
    BarnesHutForceAccelerator,
    RECORD_BYTES,
    REG_APPROX_REQ,
    REG_CALC_REQ,
    REG_NODES_BASE,
    REG_PARTICLES_BASE,
    REG_RESULT_BASE,
    STOP_COMMAND,
    encode_request,
    from_fixed,
    gravitational_force,
    register_layout,
    to_fixed,
)
from repro.core.soft_cache import SoftCacheConfig
from repro.platform.config import SystemKind
from repro.workloads.common import BenchmarkResult, WorkloadParams, build_benchmark_system, finalize_result

DEFAULT_PARTICLES = 32
THRESHOLD = 0.5
WORD_BYTES = 8
#: Software instruction costs of the two kernels (mostly FP: squares, a
#: square root, divisions — expensive on the in-order core) and tree logic.
APPROX_FP_OPS = 56
CALC_FP_OPS = 36
VISIT_OPS = 8


@dataclass
class _QuadNode:
    x_min: float
    y_min: float
    size: float
    center_x: float = 0.0
    center_y: float = 0.0
    mass: float = 0.0
    particle_index: Optional[int] = None
    children: List[Optional["_QuadNode"]] = field(default_factory=lambda: [None] * 4)
    index: int = -1

    @property
    def is_leaf(self) -> bool:
        return all(child is None for child in self.children)


def _make_particles(count: int, seed: int):
    rng = random.Random(seed)
    return [(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), rng.uniform(0.5, 2.0))
            for _ in range(count)]


def _build_tree(particles) -> List[_QuadNode]:
    root = _QuadNode(0.0, 0.0, 1.0)
    nodes = [root]

    def insert(node, particle_index):
        x, y, mass = particles[particle_index]
        if node.is_leaf and node.particle_index is None and node.mass == 0.0:
            node.particle_index = particle_index
            node.center_x, node.center_y, node.mass = x, y, mass
            return
        if node.is_leaf and node.particle_index is not None:
            existing = node.particle_index
            node.particle_index = None
            _push_down(node, existing)
        _push_down(node, particle_index)
        # Recompute the aggregate (center of mass) bottom-up lazily later.

    def _push_down(node, particle_index):
        x, y, _ = particles[particle_index]
        half = node.size / 2
        quadrant = (1 if x >= node.x_min + half else 0) + (2 if y >= node.y_min + half else 0)
        if node.children[quadrant] is None:
            child = _QuadNode(
                node.x_min + (half if quadrant & 1 else 0.0),
                node.y_min + (half if quadrant & 2 else 0.0),
                half,
            )
            node.children[quadrant] = child
            nodes.append(child)
        insert(node.children[quadrant], particle_index)

    for index in range(len(particles)):
        insert(root, index)

    def summarize(node):
        if node.is_leaf:
            return node.mass, node.center_x * node.mass, node.center_y * node.mass
        total, mx, my = 0.0, 0.0, 0.0
        if node.particle_index is not None:
            total += node.mass
            mx += node.center_x * node.mass
            my += node.center_y * node.mass
        for child in node.children:
            if child is not None:
                c_total, c_mx, c_my = summarize(child)
                total += c_total
                mx += c_mx
                my += c_my
        node.mass = total
        node.center_x = mx / total if total else 0.0
        node.center_y = my / total if total else 0.0
        return total, mx, my

    summarize(root)
    for index, node in enumerate(nodes):
        node.index = index
    return nodes


def _reference_forces(particles, nodes) -> List[float]:
    root = nodes[0]
    forces = []

    def traverse(node, px, py, pm):
        if node is None or node.mass == 0.0:
            return 0.0
        dx = node.center_x - px
        dy = node.center_y - py
        distance = math.sqrt(dx * dx + dy * dy) + 1e-9
        if node.is_leaf or node.size / distance < THRESHOLD:
            return gravitational_force(px, py, pm, node.center_x, node.center_y, node.mass)
        return sum(traverse(child, px, py, pm) for child in node.children if child is not None)

    for px, py, pm in particles:
        forces.append(traverse(root, px, py, pm))
    return forces


def _layout_records(system, nodes, particles):
    nodes_base = system.memory.allocate(len(nodes) * RECORD_BYTES, align=64)
    particles_base = system.memory.allocate(len(particles) * RECORD_BYTES, align=64)
    for index, node in enumerate(nodes):
        base = nodes_base + index * RECORD_BYTES
        system.memory.write_word(base, to_fixed(node.center_x))
        system.memory.write_word(base + 8, to_fixed(node.center_y))
        system.memory.write_word(base + 16, to_fixed(node.mass))
    for index, (x, y, mass) in enumerate(particles):
        base = particles_base + index * RECORD_BYTES
        system.memory.write_word(base, to_fixed(x))
        system.memory.write_word(base + 8, to_fixed(y))
        system.memory.write_word(base + 16, to_fixed(mass))
    return nodes_base, particles_base


def _partition(count: int, workers: int) -> List[range]:
    chunk = (count + workers - 1) // workers
    return [range(start, min(count, start + chunk)) for start in range(0, count, chunk)]


def _forces_close(measured: List[float], expected: List[float], tolerance: float = 0.05) -> bool:
    for got, want in zip(measured, expected):
        if want == 0.0:
            continue
        if abs(got - want) / abs(want) > tolerance:
            return False
    return True


def run_cpu(params: Optional[WorkloadParams] = None,
            num_particles: int = DEFAULT_PARTICLES) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=4)
    params.num_processors = max(params.num_processors, 1)
    system = build_benchmark_system(SystemKind.CPU_ONLY, params)
    particles = _make_particles(num_particles, params.seed)
    nodes = _build_tree(particles)
    nodes_base, particles_base = _layout_records(system, nodes, particles)
    expected = _reference_forces(particles, nodes)
    for core in range(params.num_processors):
        system.warm_cache(core, nodes_base, len(nodes) * RECORD_BYTES)
    forces = [0.0] * num_particles

    def program(ctx, particle_range):
        for particle_index in particle_range:
            px, py, pm = particles[particle_index]
            total = 0.0
            stack = [0]
            while stack:
                node_index = stack.pop()
                node = nodes[node_index]
                yield from ctx.load(nodes_base + node_index * RECORD_BYTES)
                yield from ctx.compute(VISIT_OPS)
                if node.mass == 0.0:
                    continue
                dx = node.center_x - px
                dy = node.center_y - py
                distance = math.sqrt(dx * dx + dy * dy) + 1e-9
                if node.is_leaf or node.size / distance < THRESHOLD:
                    fp_ops = CALC_FP_OPS if node.is_leaf else APPROX_FP_OPS
                    yield from ctx.compute(fp_ops, fp=True)
                    total += gravitational_force(px, py, pm, node.center_x, node.center_y, node.mass)
                else:
                    for child in node.children:
                        if child is not None:
                            stack.append(child.index)
            forces[particle_index] = total
        return len(particle_range)

    partitions = _partition(num_particles, params.num_processors)
    assignments = [(core, program, (particle_range,))
                   for core, particle_range in enumerate(partitions)]
    _, elapsed = system.run_programs(assignments, max_events=200_000_000)
    return finalize_result(
        "barnes-hut", SystemKind.CPU_ONLY, system, elapsed,
        correct=_forces_close(forces, expected), checksum=round(sum(forces), 3),
    )


def run_accelerated(kind: SystemKind, params: Optional[WorkloadParams] = None,
                    num_particles: int = DEFAULT_PARTICLES) -> BenchmarkResult:
    params = params or WorkloadParams(num_processors=4, num_memory_hubs=1)
    system = build_benchmark_system(kind, params)
    accelerator = BarnesHutForceAccelerator()
    synthesis = system.install_accelerator(
        accelerator,
        registers=register_layout(params.num_processors),
        fpga_mhz=params.fpga_mhz,
        soft_cache=(SoftCacheConfig(size_bytes=8192, assoc=4)
                    if kind is SystemKind.DUET else None),
    )
    system.start_accelerator()
    adapter = system.adapter
    particles = _make_particles(num_particles, params.seed)
    nodes = _build_tree(particles)
    nodes_base, particles_base = _layout_records(system, nodes, particles)
    expected = _reference_forces(particles, nodes)
    forces = [0.0] * num_particles

    def program(ctx, thread, particle_range):
        if thread == 0:
            yield from ctx.mmio_write(adapter.register_addr(REG_NODES_BASE), nodes_base)
            yield from ctx.mmio_write(adapter.register_addr(REG_PARTICLES_BASE), particles_base)
        else:
            yield from ctx.compute(50)  # let thread 0 publish the bases first
        result_reg = adapter.register_addr(REG_RESULT_BASE + thread)
        for particle_index in particle_range:
            px, py, pm = particles[particle_index]
            outstanding = 0
            total = 0.0
            stack = [0]
            while stack:
                node_index = stack.pop()
                node = nodes[node_index]
                yield from ctx.load(nodes_base + node_index * RECORD_BYTES)
                yield from ctx.compute(VISIT_OPS)
                if node.mass == 0.0:
                    continue
                dx = node.center_x - px
                dy = node.center_y - py
                distance = math.sqrt(dx * dx + dy * dy) + 1e-9
                if node.is_leaf or node.size / distance < THRESHOLD:
                    register = REG_CALC_REQ if node.is_leaf else REG_APPROX_REQ
                    request = encode_request(thread, node_index, particle_index)
                    yield from ctx.mmio_write(adapter.register_addr(register), request)
                    outstanding += 1
                    # Software pipelining: keep a few requests in flight.
                    if outstanding >= 4:
                        raw = yield from ctx.mmio_read(result_reg)
                        total += from_fixed(raw)
                        outstanding -= 1
                else:
                    for child in node.children:
                        if child is not None:
                            stack.append(child.index)
            while outstanding:
                raw = yield from ctx.mmio_read(result_reg)
                total += from_fixed(raw)
                outstanding -= 1
            forces[particle_index] = total
        return len(particle_range)

    partitions = _partition(num_particles, params.num_processors)
    assignments = [(core, program, (core, particle_range))
                   for core, particle_range in enumerate(partitions)]
    _, elapsed = system.run_programs(assignments, max_events=200_000_000)
    # Stop both pipelines so the accelerator process terminates cleanly.
    system.sim.run_process(_stop_accelerator(system, adapter), name="bh-stop")
    return finalize_result(
        "barnes-hut", kind, system, elapsed,
        correct=_forces_close(forces, expected), checksum=round(sum(forces), 3),
        efpga_area_mm2=synthesis.area_mm2,
        extra={"fmax_mhz": synthesis.fmax_mhz},
    )


def _stop_accelerator(system, adapter):
    ctx = system.context(0)
    yield from ctx.mmio_write(adapter.register_addr(REG_APPROX_REQ), STOP_COMMAND)
    yield from ctx.mmio_write(adapter.register_addr(REG_CALC_REQ), STOP_COMMAND)


def run(kind: SystemKind, params: Optional[WorkloadParams] = None,
        num_particles: int = DEFAULT_PARTICLES) -> BenchmarkResult:
    if kind is SystemKind.CPU_ONLY:
        return run_cpu(params, num_particles)
    return run_accelerated(kind, params, num_particles)
