"""Control Hub: FPGA Manager + Soft Register Interface.

The Control Hub presents the eFPGA as an on-chip device reachable via
memory-mapped I/O (Sec. II-E).  It has two submodules:

* the **FPGA Manager** — programming engine (bitstream load + integrity
  check), programmable clock generator, exception handler and feature
  switches (timeout limit, reset, error-code clear);
* the **Soft Register Interface** — the accelerator's software interface,
  augmented with the fast-clock-domain Shadow Registers of Sec. II-F.

MMIO accesses are serviced in arrival order (Fig. 6c: shadow accesses stay
ordered with respect to normal accesses), but a blocking CPU-bound-FIFO read
parks to the side so it cannot deadlock the hub.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.exceptions import DuetError, ErrorCode, ExceptionHandler
from repro.core.feature_switches import FeatureSwitches
from repro.core.registers import RegisterLayout, RegisterSpec
from repro.core.shadow_registers import BOGUS_VALUE, SoftRegisterInterface
from repro.cpu.mmio import MmioMap, MmioRegion
from repro.fpga.bitstream import Bitstream
from repro.fpga.clocking import ProgrammableClockGenerator
from repro.noc import NocMessage, TileRouter
from repro.sim import Channel, ClockDomain, Simulator, StatSet

#: MMIO offsets of the FPGA Manager's control registers.
REG_STATUS = 0x00        # read: 1 = programmed and active, 0 otherwise
REG_RESET = 0x08         # write: reset the soft accelerator
REG_CLK_MHZ = 0x10       # read/write: eFPGA clock frequency in MHz
REG_TIMEOUT = 0x18       # read/write: exception timeout in system cycles
REG_ERROR = 0x20         # read: latched error code; write: clear
REG_PROGRAM = 0x28       # write: program the bitstream with the given handle
REG_HUB_ACTIVE = 0x30    # write: bit i (de)activates memory hub i

#: Offset at which the soft register window starts inside the MMIO region.
SOFT_REGISTER_BASE = 0x1000
SOFT_REGISTER_STRIDE = 0x8
CONTROL_REGION_SIZE = 0x2000


def program_cycles(config_bits: int, bits_per_cycle: int) -> int:
    """System cycles the programming engine spends transferring an image.

    The single source of truth for configuration-transfer time: used by
    :meth:`ControlHub.program` and by fleet migration stalls
    (:func:`repro.fleet.node.migration_stall_ns`), so region-granular
    accounting cannot drift between serve and fleet.  A partial transfer
    still pays at least one cycle.
    """
    if config_bits < 0:
        raise ValueError(f"config_bits must be non-negative, got {config_bits}")
    if bits_per_cycle < 1:
        raise ValueError(
            f"bits_per_cycle must be positive, got {bits_per_cycle}")
    return max(1, -(-config_bits // bits_per_cycle))


@dataclass
class ControlHubConfig:
    """Static configuration of one Control Hub."""

    #: Downgrade every shadowed register to a normal soft register (the
    #: FPSoC baseline of Sec. V-D).
    downgrade_shadow: bool = False
    #: Configuration-bit transfer rate of the programming engine
    #: (bits per system-clock cycle).
    programming_bits_per_cycle: int = 64
    #: Service time of one MMIO access inside the hub (system cycles).
    mmio_service_cycles: int = 1


class ControlHub:
    """The Duet Adapter's software-facing control plane."""

    TARGET = "ctrl"

    def __init__(
        self,
        sim: Simulator,
        sys_domain: ClockDomain,
        tile_router: TileRouter,
        mmio_map: MmioMap,
        clock_generator: ProgrammableClockGenerator,
        config: Optional[ControlHubConfig] = None,
        exceptions: Optional[ExceptionHandler] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.sys_domain = sys_domain
        self.node = tile_router.node
        self.name = name or f"ctrlhub@{self.node}"
        self.config = config or ControlHubConfig()
        self.clock_generator = clock_generator
        self.switches = FeatureSwitches(f"{self.name}.switches")
        self.exceptions = exceptions or ExceptionHandler(sim, sys_domain, name=f"{self.name}.exc")
        self.registers = SoftRegisterInterface(
            sim,
            sys_domain,
            clock_generator.fpga_domain,
            self.exceptions,
            name=f"{self.name}.softreg",
            downgrade_shadow=self.config.downgrade_shadow,
        )
        self.port = tile_router.port(self.TARGET, self._handle_mmio)
        self.region: MmioRegion = mmio_map.register(
            CONTROL_REGION_SIZE, self.node, self.TARGET, name=self.name
        )
        self.stats = StatSet(f"{self.name}.stats")
        #: Observability hook (:mod:`repro.obs`): when a Tracer is attached
        #: the programming engine records one ``xfer`` span per transfer.
        #: Default off — ``None`` keeps this path allocation-free.
        self.tracer = None
        # Programming state.
        self.programmed_bitstream: Optional[Bitstream] = None
        self._bitstream_handles: Dict[int, Bitstream] = {}
        self._next_handle = 1
        self.programming_busy = False
        self._hub_activation_hook: Optional[Callable[[int], None]] = None
        self._reset_hook: Optional[Callable[[], None]] = None
        # Serialized MMIO service queue (strict I/O ordering, Fig. 6c).
        self._mmio_queue = Channel(sim, name=f"{self.name}.mmio-queue")
        sim.process(self._mmio_server(), name=f"{self.name}.mmio-server")

    # ------------------------------------------------------------------ #
    # Hooks wired by the Duet Adapter
    # ------------------------------------------------------------------ #
    def set_hub_activation_hook(self, hook: Callable[[int], None]) -> None:
        """Called with the written bitmask when software toggles hub activity."""
        self._hub_activation_hook = hook

    def set_reset_hook(self, hook: Callable[[], None]) -> None:
        """Called when software writes the accelerator-reset register."""
        self._reset_hook = hook

    # ------------------------------------------------------------------ #
    # Address helpers (used by software drivers)
    # ------------------------------------------------------------------ #
    def control_addr(self, offset: int) -> int:
        return self.region.base + offset

    def register_addr(self, index: int) -> int:
        return self.region.base + SOFT_REGISTER_BASE + index * SOFT_REGISTER_STRIDE

    def _decode(self, addr: int) -> int:
        return addr - self.region.base

    # ------------------------------------------------------------------ #
    # Register layout / programming (called by the Duet Adapter)
    # ------------------------------------------------------------------ #
    def configure_registers(self, layout: RegisterLayout) -> None:
        self.registers.configure(layout)

    def stage_bitstream(self, bitstream: Bitstream) -> int:
        """Make a bitstream available to the programming engine; returns a handle."""
        handle = self._next_handle
        self._next_handle += 1
        self._bitstream_handles[handle] = bitstream
        return handle

    def program(self, bitstream: Bitstream):
        """Programming engine: integrity check, then configuration transfer.

        A generator — the caller (the adapter's software driver or an MMIO
        write to ``REG_PROGRAM``) pays the programming time.
        """
        self.programming_busy = True
        try:
            if not bitstream.verify():
                self.exceptions.raise_error(ErrorCode.BITSTREAM_CORRUPT)
                raise DuetError(f"bitstream {bitstream.design_name!r} failed its integrity check")
            transfer_cycles = program_cycles(
                bitstream.config_bits, self.config.programming_bits_per_cycle
            )
            start_ps = self.sim.now_ps if self.tracer is not None else 0
            yield self.sys_domain.wait_cycles(transfer_cycles)
            # Re-verify after the transfer window: an SEU that lands while
            # the configuration memory is being written (see repro.chaos)
            # must not activate a corrupt design.
            if not bitstream.verify():
                self.exceptions.raise_error(ErrorCode.BITSTREAM_CORRUPT)
                raise DuetError(
                    f"bitstream {bitstream.design_name!r} corrupted during "
                    "the configuration transfer"
                )
            self.programmed_bitstream = bitstream
            self.stats.counter("programmings").increment()
            if self.tracer is not None:
                self.tracer.complete(
                    "xfer", self.name, start_ps, self.sim.now_ps - start_ps,
                    cat="ctrl", args={"design": bitstream.design_name,
                                      "bits": bitstream.config_bits})
        finally:
            self.programming_busy = False
        return None

    def program_instantly(self, bitstream: Bitstream) -> None:
        """Zero-time variant used by experiment set-up code."""
        if not bitstream.verify():
            self.exceptions.raise_error(ErrorCode.BITSTREAM_CORRUPT)
            raise DuetError(f"bitstream {bitstream.design_name!r} failed its integrity check")
        self.programmed_bitstream = bitstream
        self.stats.counter("programmings").increment()

    # ------------------------------------------------------------------ #
    # MMIO handling
    # ------------------------------------------------------------------ #
    def _handle_mmio(self, message: NocMessage) -> None:
        if message.kind not in ("mmio_read", "mmio_write"):
            raise DuetError(f"{self.name}: unexpected NoC message {message.kind!r}")
        self.stats.counter("mmio_accesses").increment()
        self._mmio_queue.try_put(message)

    def _mmio_server(self):
        while True:
            message = yield from self._mmio_queue.get()
            yield self.sys_domain.wait_cycles(self.config.mmio_service_cycles)
            offset = self._decode(message.addr)
            if offset >= SOFT_REGISTER_BASE:
                index = (offset - SOFT_REGISTER_BASE) // SOFT_REGISTER_STRIDE
                spec = self.registers.spec_of(index)
                blocking = (
                    message.kind == "mmio_read"
                    and spec is not None
                    and spec.kind.value == "cpu_bound_fifo"
                )
                if blocking:
                    # Park blocking reads so they cannot stall the hub.
                    self.sim.process(
                        self._serve_register(message, index),
                        name=f"{self.name}.blocking-read",
                    )
                else:
                    yield from self._serve_register(message, index)
            else:
                yield from self._serve_control(message, offset)

    def _serve_register(self, message: NocMessage, index: int):
        if message.kind == "mmio_write":
            yield from self.registers.cpu_write(index, message.meta.get("value", 0))
            self.port.reply(message, "mmio_resp")
        else:
            value = yield from self.registers.cpu_read(index)
            self.port.reply(message, "mmio_resp", value=value)
        return None

    def _serve_control(self, message: NocMessage, offset: int):
        value = message.meta.get("value", 0)
        if message.kind == "mmio_write":
            yield from self._control_write(offset, value)
            self.port.reply(message, "mmio_resp")
        else:
            result = yield from self._control_read(offset)
            self.port.reply(message, "mmio_resp", value=result)
        return None

    def _control_write(self, offset: int, value: int):
        if offset == REG_RESET:
            if self._reset_hook is not None:
                self._reset_hook()
        elif offset == REG_CLK_MHZ:
            self.clock_generator.set_frequency(float(value))
        elif offset == REG_TIMEOUT:
            self.exceptions.set_timeout_cycles(int(value))
        elif offset == REG_ERROR:
            self.exceptions.clear()
        elif offset == REG_PROGRAM:
            bitstream = self._bitstream_handles.get(value)
            if bitstream is None:
                self.exceptions.raise_error(ErrorCode.PROTOCOL)
            else:
                yield from self.program(bitstream)
        elif offset == REG_HUB_ACTIVE:
            if self._hub_activation_hook is not None:
                self._hub_activation_hook(value)
        else:
            self.stats.counter("unknown_control_writes").increment()
        yield self.sys_domain.wait_cycles(1)
        return None

    def _control_read(self, offset: int):
        yield self.sys_domain.wait_cycles(1)
        if offset == REG_STATUS:
            return 1 if (self.programmed_bitstream is not None and not self.programming_busy) else 0
        if offset == REG_CLK_MHZ:
            return int(self.clock_generator.frequency_mhz)
        if offset == REG_TIMEOUT:
            return self.exceptions.timeout_cycles
        if offset == REG_ERROR:
            return int(self.exceptions.error_code)
        self.stats.counter("unknown_control_reads").increment()
        return BOGUS_VALUE

    # ------------------------------------------------------------------ #
    # FPGA-side view (handed to the accelerator environment)
    # ------------------------------------------------------------------ #
    @property
    def fpga_registers(self):
        return self.registers.fpga_view
