"""Streaming telemetry: windowed reads over the unified metrics layer.

End-of-run aggregates (``SloMonitor.tenant_rows``) answer *what happened*;
operations needs *what is happening* — windowed metric streams are what a
monitoring→alert→scale loop consumes.  This module adds that layer without
touching the simulation schedule:

* :class:`TelemetryMonitor` — tumbling-window reads over a live
  :class:`~repro.serve.slo.SloMonitor` (per-tenant goodput / shed rate,
  p99-over-window via cursors into the existing latency histograms,
  queue-depth level + slope from the queue-depth time series, fabric busy
  fraction from the scheduler's service accounting).  It owns **no sim
  processes and no timer events**: windows flush lazily whenever an
  existing recording hook crosses a window boundary (``tick``), plus a
  ``finalize`` sweep at run end.  Attaching a monitor therefore cannot
  perturb event ordering — monitor-on runs are bit-identical to
  monitor-off runs, not just "close" (pinned in ``tests/test_alerts.py``).
* :class:`TelemetryStream` — the picklable result: a flat list of plain
  window-sample dicts with integer-ps timestamps that merges across the
  fleet process pool exactly like
  :class:`~repro.obs.metrics.MetricsSnapshot` (deterministic
  ``(epoch, t_ps, node_id)`` order, serial ≡ process bit-identical), plus
  tumbling (:meth:`TelemetryStream.series`) and sliding
  (:meth:`TelemetryStream.sliding`) reads for consumers.

Window/boundary semantics: window ``k`` covers ``[k·w, (k+1)·w)`` —  an
event at exactly ``(k+1)·w`` first closes window ``k`` and then records
into window ``k+1``.  Hooks call :meth:`TelemetryMonitor.tick` *before*
recording, so the cursor deltas captured at a close belong exactly to the
closed window.  Zero-traffic windows are still emitted (all-zero counts),
because "no traffic arrived" is itself a signal the alert layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Fields of a window sample that :meth:`TelemetryStream.series` /
#: :meth:`TelemetryStream.sliding` can read (the flat numeric ones).
SAMPLE_METRICS = (
    "submitted", "completed", "good", "shed", "fault_shed", "resolved",
    "bad", "bad_fraction", "goodput_krps", "shed_rate", "p99_us",
    "queue_depth", "queue_slope_per_us", "busy_fraction",
)


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile, matching ``repro.sim.stats.Histogram``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(round(fraction * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class TelemetryStream:
    """A picklable sequence of window samples with a deterministic merge.

    ``samples`` is a list of plain dicts (JSON-shaped by contract — they
    travel inside node report dicts through the fleet process pool).  Each
    sample carries ``(epoch, node_id, seq, t_ps, window_ps)`` identity
    fields plus the :data:`SAMPLE_METRICS` readings and a ``tenants``
    sub-dict of per-tenant counts.
    """

    window_ps: int = 0
    samples: List[Dict[str, Any]] = field(default_factory=list)

    def merge(self, other: "TelemetryStream") -> None:
        if self.window_ps == 0:
            self.window_ps = other.window_ps
        elif other.window_ps not in (0, self.window_ps):
            raise ValueError(
                f"cannot merge streams with different windows: "
                f"{self.window_ps} vs {other.window_ps}")
        self.samples.extend(other.samples)

    @classmethod
    def merged(cls, streams: Iterable["TelemetryStream"]) -> "TelemetryStream":
        """Deterministic fold: concatenate then sort by the total key
        ``(epoch, t_ps, node_id, seq)``.  Because the key is total over
        samples from distinct (node, epoch) cells, the result is
        bit-identical whatever order the pool delivered the pieces in."""
        result = cls()
        for stream in streams:
            result.merge(stream)
        result.samples.sort(
            key=lambda s: (s["epoch"], s["t_ps"], s["node_id"], s["seq"]))
        return result

    # ------------------------------------------------------------------ #
    # Window reads
    # ------------------------------------------------------------------ #
    def series(self, metric: str,
               node_id: Optional[int] = None) -> List[Tuple[int, float]]:
        """Tumbling read: ``(t_ps, value)`` per window for one metric."""
        if metric not in SAMPLE_METRICS:
            raise KeyError(f"unknown telemetry metric {metric!r}; "
                           f"one of {SAMPLE_METRICS}")
        return [(s["t_ps"], s[metric]) for s in self.samples
                if node_id is None or s["node_id"] == node_id]

    def sliding(self, metric: str, width: int,
                node_id: Optional[int] = None) -> List[Tuple[int, float]]:
        """Sliding read: rolling mean of the last ``width`` windows,
        advanced one window at a time (timestamp = right edge)."""
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        points = self.series(metric, node_id=node_id)
        out: List[Tuple[int, float]] = []
        for index in range(len(points)):
            lo = max(0, index - width + 1)
            chunk = [value for _, value in points[lo:index + 1]]
            out.append((points[index][0], sum(chunk) / len(chunk)))
        return out

    def node_ids(self) -> List[int]:
        return sorted({s["node_id"] for s in self.samples})

    # ------------------------------------------------------------------ #
    # Serialization (node reports are plain JSON data by contract)
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        return {"window_ps": self.window_ps,
                "samples": [dict(s) for s in self.samples]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryStream":
        return cls(window_ps=int(data.get("window_ps", 0)),
                   samples=[dict(s) for s in data.get("samples", [])])


class TelemetryMonitor:
    """Tumbling-window emitter over one scheduler's SLO monitor.

    Pure observation: it never yields, schedules, or creates sim events.
    The serve-layer hooks (``SloMonitor.on_submit`` etc.) call
    :meth:`tick` behind ``if telemetry is not None`` before recording;
    :meth:`finalize` flushes the trailing (possibly empty) windows when
    the run ends.
    """

    def __init__(self, monitor, window_ns: float, node_id: int = 0,
                 epoch: int = 0, t0_ps: int = 0, scheduler=None) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.monitor = monitor
        self.scheduler = scheduler
        self.window_ns = float(window_ns)
        self.window_ps = int(round(window_ns * 1000.0))
        self.node_id = node_id
        self.epoch = epoch
        #: Global (fleet-timeline) ps offset of this run's t=0 — epoch
        #: number × epoch length for fleet nodes, 0 for standalone serves.
        self.t0_ps = t0_ps
        self.stream = TelemetryStream(window_ps=self.window_ps)
        self._seq = 0
        self._window_end_ns = self.window_ns
        # Cursors into the monitor's accumulating structures.
        self._counts: Dict[str, Tuple[int, int, int, int, int]] = {}
        self._hist_cursor: Dict[str, int] = {}
        self._queue_cursor = 0
        self._queue_last = 0.0
        self._busy_ns_last = 0.0

    # ------------------------------------------------------------------ #
    # Hook-facing API
    # ------------------------------------------------------------------ #
    def tick(self, now_ns: float) -> None:
        """Close every window whose end is <= ``now_ns``.  Called by the
        recording hooks *before* they record, so an event exactly at a
        boundary lands in the window it opens, not the one it closes."""
        while now_ns >= self._window_end_ns:
            self._close_window()

    def finalize(self, end_ns: float) -> None:
        """Flush through ``end_ns`` at run end.  The final window is
        closed even when partial (its nominal boundaries are kept, so
        windows stay aligned across fleet nodes)."""
        while self._window_end_ns - self.window_ns < end_ns:
            self._close_window()

    # ------------------------------------------------------------------ #
    # Window close: cursor-delta reads over the registry structures
    # ------------------------------------------------------------------ #
    def _close_window(self) -> None:
        window_end_ns = self._window_end_ns
        sample: Dict[str, Any] = {
            "epoch": self.epoch,
            "node_id": self.node_id,
            "seq": self._seq,
            "t_ps": self.t0_ps + int(round(window_end_ns * 1000.0)),
            "window_ps": self.window_ps,
        }
        submitted = completed = good = shed = fault_shed = 0
        tenants: Dict[str, Dict[str, Any]] = {}
        window_latencies: List[float] = []
        for name in sorted(self.monitor.accounts):
            account = self.monitor.accounts[name]
            prev = self._counts.get(name, (0, 0, 0, 0, 0))
            cur = (account.submitted, account.completed, account.good,
                   account.shed, account.fault_shed)
            self._counts[name] = cur
            d_sub, d_comp, d_good, d_shed, d_fault = (
                c - p for c, p in zip(cur, prev))
            # .histograms().get(), not .histogram(): reading must not
            # create an empty histogram for a tenant with no completions.
            histogram = self.monitor.stats.histograms().get(f"latency_ns.{name}")
            cursor = self._hist_cursor.get(name, 0)
            latencies = histogram.samples[cursor:] if histogram is not None else []
            self._hist_cursor[name] = cursor + len(latencies)
            window_latencies.extend(latencies)
            submitted += d_sub
            completed += d_comp
            good += d_good
            shed += d_shed
            fault_shed += d_fault
            if d_sub or d_comp or d_shed:
                tenants[name] = {
                    "submitted": d_sub, "completed": d_comp, "good": d_good,
                    "shed": d_shed,
                    "p99_us": _percentile(latencies, 0.99) / 1000.0,
                }
        # Queue depth: level (last point wins, carried across empty
        # windows) and slope in depth-per-us across the window's points.
        series = self.monitor.queue_depth
        times = series.times[self._queue_cursor:]
        values = series.values[self._queue_cursor:]
        self._queue_cursor = len(series.times)
        slope = 0.0
        if values:
            self._queue_last = values[-1]
            span_ns = times[-1] - times[0]
            if span_ns > 0:
                slope = (values[-1] - values[0]) / (span_ns / 1000.0)
        busy_fraction = 0.0
        if self.scheduler is not None:
            busy_ns = sum(f.service_ns_total for f in self.scheduler.fabrics)
            busy_fraction = ((busy_ns - self._busy_ns_last)
                             / (self.window_ns * len(self.scheduler.fabrics)))
            self._busy_ns_last = busy_ns
        # "Resolved" = requests that reached an outcome in this window
        # (completed or shed); the burn-rate denominator.  Defined so a
        # zero-traffic window yields bad_fraction 0.0, not a divide error.
        resolved = completed + shed
        bad = resolved - good
        sample.update({
            "submitted": submitted,
            "completed": completed,
            "good": good,
            "shed": shed,
            "fault_shed": fault_shed,
            "resolved": resolved,
            "bad": bad,
            "bad_fraction": bad / resolved if resolved else 0.0,
            "goodput_krps": good / self.window_ns * 1e6,
            "shed_rate": shed / submitted if submitted else 0.0,
            "p99_us": _percentile(window_latencies, 0.99) / 1000.0,
            "queue_depth": self._queue_last,
            "queue_slope_per_us": slope,
            "busy_fraction": busy_fraction,
            "tenants": tenants,
        })
        self.stream.samples.append(sample)
        self._seq += 1
        self._window_end_ns = window_end_ns + self.window_ns
