"""Tangent accelerator (Dolly-P1M0, fine-grained acceleration).

A floating-point tangent unit generated (in the paper) with Catapult HLS
from a piece-wise linear approximation with a maximum error of 0.3%
relative to libm.  Arguments arrive through an FPGA-bound FIFO, results
return through a CPU-bound FIFO; the accelerator needs no memory hub.

Fixed-point convention: angles and results cross the register interface as
integers scaled by :data:`FIXED_POINT_SCALE`, matching how a real 64-bit
soft register would carry a fixed-point value.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.registers import RegisterKind, RegisterSpec
from repro.fpga.accelerator import SoftAccelerator
from repro.fpga.synthesis import AcceleratorDesign

#: Fixed-point scale used on the register interface (Q32.20-ish).
FIXED_POINT_SCALE = 1 << 20
#: Number of piece-wise linear segments over [0, pi/2).
NUM_SEGMENTS = 64
#: Sentinel argument that stops the accelerator.
STOP_COMMAND = (1 << 62)

REG_ARGUMENT = 0   # FPGA-bound FIFO: fixed-point angle
REG_RESULT = 1     # CPU-bound FIFO: fixed-point tangent


def register_layout() -> List[RegisterSpec]:
    return [
        RegisterSpec(REG_ARGUMENT, RegisterKind.FPGA_BOUND_FIFO, "argument"),
        RegisterSpec(REG_RESULT, RegisterKind.CPU_BOUND_FIFO, "result"),
    ]


def to_fixed(value: float) -> int:
    return int(round(value * FIXED_POINT_SCALE))


def from_fixed(value: int) -> float:
    return value / FIXED_POINT_SCALE


def piecewise_linear_tangent(angle: float) -> float:
    """The approximation algorithm the accelerator implements.

    Tangent is reduced to [0, pi/2) using its period and odd symmetry, then
    interpolated on a table of ``NUM_SEGMENTS`` segments whose breakpoints
    are spaced in the *tangent domain* (denser near pi/2) to bound the
    relative error at roughly 0.3%, as the paper reports.
    """
    reduced = math.fmod(angle, math.pi)
    if reduced > math.pi / 2:
        reduced -= math.pi
    elif reduced < -math.pi / 2:
        reduced += math.pi
    sign = 1.0 if reduced >= 0 else -1.0
    x = abs(reduced)
    # Clamp just below the asymptote, as a hardware implementation would.
    limit = math.pi / 2 - 1e-3
    x = min(x, limit)
    segment_width = limit / NUM_SEGMENTS
    index = min(NUM_SEGMENTS - 1, int(x / segment_width))
    x0 = index * segment_width
    x1 = x0 + segment_width
    y0 = math.tan(x0)
    y1 = math.tan(x1)
    interpolated = y0 + (y1 - y0) * (x - x0) / segment_width
    return sign * interpolated


class TangentAccelerator(SoftAccelerator):
    """Pipelined piece-wise linear tangent unit."""

    DESIGN = AcceleratorDesign(
        name="tangent",
        luts=1350,
        ffs=1600,
        bram_kbits=0,
        dsps=4,
        logic_depth=9,
        routing_pressure=0.25,
        mem_ports=0,
        description="Catapult-HLS piece-wise linear tangent (max error 0.3%)",
    )

    #: Pipeline latency (eFPGA cycles) from argument pop to result push:
    #: range reduction, table lookup, multiply-accumulate.
    PIPELINE_CYCLES = 6

    def __init__(self, name: str = "tangent") -> None:
        super().__init__(name)
        self.processed = 0

    def behavior(self):
        while True:
            raw = yield from self.regs.pop_request(REG_ARGUMENT)
            if raw == STOP_COMMAND:
                return self.processed
            yield self.cycles(self.PIPELINE_CYCLES)
            angle = from_fixed(raw)
            result = piecewise_linear_tangent(angle)
            yield from self.regs.push_response(REG_RESULT, to_fixed(result))
            self.processed += 1
            self.stats.counter("tangents").increment()
